"""Resilience subsystem tests: checkpoint/restore, WAL, health signals.

The contract under test (docs/resilience.md): killing a run at any
packet boundary and resuming from the last checkpoint is
**bit-identical** to never having crashed — counters, cache stats,
estimates, and the set of flows seen all match exactly, on both
engines and both replacement policies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import TraceFormatError
from repro.hashing.tabulation import TabulationIndexer
from repro.resilience import (
    Checkpoint,
    FaultPlan,
    WriteAheadLog,
    health_of,
    observe_health,
    recover,
)
from repro.resilience.wal import EPOCH_RECORD


def make_config(engine="batched", replacement="lru", seed=5, bank=512):
    return CaesarConfig(
        cache_entries=64,
        entry_capacity=16,
        k=3,
        bank_size=bank,
        seed=seed,
        engine=engine,
        replacement=replacement,
    )


def assert_bit_identical(a: Caesar, b: Caesar, flow_ids: np.ndarray) -> None:
    """Full bit-identity: SRAM words, cache stats, estimates, flows."""
    np.testing.assert_array_equal(a.counters.values, b.counters.values)
    assert a.cache.stats == b.cache.stats
    assert a.recorded_mass == b.recorded_mass
    np.testing.assert_array_equal(np.sort(a.flows_seen()), np.sort(b.flows_seen()))
    for method in ("csm", "mlm"):
        np.testing.assert_array_equal(
            a.estimate(flow_ids, method), b.estimate(flow_ids, method)
        )


@pytest.mark.parametrize("engine", ["batched", "runs", "scalar"])
@pytest.mark.parametrize("replacement", ["lru", "random"])
class TestKillResume:
    def test_resume_matches_uninterrupted(self, tiny_trace, engine, replacement):
        """Kill at an arbitrary packet boundary, resume, finish: the
        resumed run is indistinguishable from one that never stopped."""
        packets = tiny_trace.packets
        cut = len(packets) // 3

        straight = Caesar(make_config(engine, replacement))
        straight.process(packets)
        straight.finalize()

        crashed = Caesar(make_config(engine, replacement))
        crashed.process(packets[:cut])
        ckpt = crashed.checkpoint()
        del crashed  # the process died here

        resumed = Caesar.resume(ckpt)
        resumed.process(packets[cut:])
        resumed.finalize()

        assert_bit_identical(straight, resumed, tiny_trace.flows.ids)

    def test_checkpoint_roundtrips_through_disk(
        self, tiny_trace, tmp_path, engine, replacement
    ):
        packets = tiny_trace.packets
        cut = len(packets) // 2
        straight = Caesar(make_config(engine, replacement))
        straight.process(packets)
        straight.finalize()

        crashed = Caesar(make_config(engine, replacement))
        crashed.process(packets[:cut])
        path = crashed.save_checkpoint(tmp_path / "ck.npz")

        resumed = Caesar.resume(path)
        resumed.process(packets[cut:])
        resumed.finalize()
        assert_bit_identical(straight, resumed, tiny_trace.flows.ids)


class TestCheckpointState:
    def test_pending_buffer_survives(self, tiny_trace):
        """A checkpoint taken with evictions still buffered must carry
        them across the restore.

        ``process()`` flushes at every API boundary, so stage the
        pending rows directly — the capture path must still round-trip
        them for any caller checkpointing mid-chunk.
        """
        packets = tiny_trace.packets
        caesar = Caesar(make_config("batched"), buffer_capacity=64)
        caesar.process(packets[: len(packets) // 2])
        caesar._buffer.append(424242, 17, 0)
        caesar._buffer.append(424243, 5, 1)
        ckpt = caesar.checkpoint()
        assert int(ckpt.arrays["pending_ids"].shape[0]) == 2
        resumed = Caesar.resume(ckpt)
        assert resumed._buffer.length == 2
        np.testing.assert_array_equal(
            resumed._buffer.ids[:2], np.array([424242, 424243], dtype=np.uint64)
        )
        caesar.finalize()
        resumed.finalize()
        np.testing.assert_array_equal(caesar.counters.values, resumed.counters.values)
        assert caesar.counters.total_mass == resumed.counters.total_mass

    def test_tabulation_indexer_resumes(self, tiny_trace):
        packets = tiny_trace.packets
        cut = len(packets) // 2
        straight = Caesar(make_config())
        straight.indexer = TabulationIndexer(3, 512, seed=11)
        straight.process(packets)
        straight.finalize()

        crashed = Caesar(make_config())
        crashed.indexer = TabulationIndexer(3, 512, seed=11)
        crashed.process(packets[:cut])
        resumed = Caesar.resume(crashed.checkpoint())
        assert isinstance(resumed.indexer, TabulationIndexer)
        resumed.process(packets[cut:])
        resumed.finalize()
        assert_bit_identical(straight, resumed, tiny_trace.flows.ids)

    def test_checkpoint_lag_tracks_mass_since_checkpoint(self, tiny_trace):
        packets = tiny_trace.packets
        caesar = Caesar(make_config())
        caesar.process(packets[:1000])
        assert caesar.checkpoint_lag == caesar.recorded_mass
        caesar.checkpoint()
        assert caesar.checkpoint_lag == 0
        caesar.process(packets[1000:2000])
        assert caesar.checkpoint_lag == 1000

    def test_fault_state_rides_along(self, tiny_trace):
        """Checkpoints under an active fault plan restore the injector
        RNG and accounting: the resumed process is bit-identical to the
        crashed process continuing.

        (Fault draws are per *drained chunk*, and chunk boundaries
        follow the ``process()`` call pattern — so the reference here is
        the crashed instance kept alive, not a differently-chunked
        uninterrupted run; see docs/resilience.md.)
        """
        packets = tiny_trace.packets
        cut = len(packets) // 2
        plan = FaultPlan(drop_chunk=0.3, seed=77)
        crashed = Caesar(make_config(), buffer_capacity=64, fault_plan=plan)
        crashed.process(packets[:cut])
        resumed = Caesar.resume(crashed.checkpoint())

        # Continue both in lockstep: they must never diverge.
        crashed.process(packets[cut:])
        crashed.finalize()
        resumed.process(packets[cut:])
        resumed.finalize()
        np.testing.assert_array_equal(crashed.counters.values, resumed.counters.values)
        assert crashed._injector.lost_mass == resumed._injector.lost_mass
        assert crashed.effective_mass == resumed.effective_mass
        assert crashed._injector.dropped_chunks == resumed._injector.dropped_chunks


class TestCheckpointIntegrity:
    def _checkpoint_file(self, tiny_trace, tmp_path):
        caesar = Caesar(make_config())
        caesar.process(tiny_trace.packets[:2000])
        return caesar.save_checkpoint(tmp_path / "ck.npz")

    def test_truncation_rejected(self, tiny_trace, tmp_path):
        path = self._checkpoint_file(tiny_trace, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            Checkpoint.load(path)

    def test_digest_tamper_rejected(self, tiny_trace, tmp_path):
        path = self._checkpoint_file(tiny_trace, tmp_path)
        with np.load(path, allow_pickle=False) as z:
            members = {k: z[k].copy() for k in z.files}
        members["counter_values"][0] += 1
        np.savez_compressed(path, **members)
        with pytest.raises(TraceFormatError):
            Checkpoint.load(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(TraceFormatError):
            Checkpoint.load(path)

    def test_missing_member_rejected(self, tiny_trace, tmp_path):
        path = self._checkpoint_file(tiny_trace, tmp_path)
        with np.load(path, allow_pickle=False) as z:
            members = {k: z[k].copy() for k in z.files}
        del members["cache_ids"]
        np.savez_compressed(path, **members)
        with pytest.raises(TraceFormatError):
            Checkpoint.load(path)


class TestWal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "w.wal"
        ids = np.array([1, 2, 3], dtype=np.uint64)
        vals = np.array([10, 20, 30], dtype=np.int64)
        reasons = np.array([0, 1, 2], dtype=np.uint8)
        with WriteAheadLog(path) as wal:
            wal.append_chunk(ids, vals, reasons)
            wal.append_event(9, 7, 1)
        records = list(WriteAheadLog.iter_records(path))
        assert len(records) == 2
        np.testing.assert_array_equal(records[0].ids, ids)
        np.testing.assert_array_equal(records[0].values, vals)
        assert records[0].mass == 60
        assert records[1].ids[0] == 9 and records[1].values[0] == 7

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "w.wal"
        ids = np.array([1], dtype=np.uint64)
        vals = np.array([1], dtype=np.int64)
        rs = np.array([0], dtype=np.uint8)
        with WriteAheadLog(path) as wal:
            first = wal.append_chunk(ids, vals, rs)
        with WriteAheadLog(path) as wal:
            second = wal.append_chunk(ids, vals, rs)
        assert second == first + 1
        assert [r.seq for r in WriteAheadLog.iter_records(path)] == [first, second]

    def test_epoch_marker(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            wal.begin_epoch(4)
        (record,) = WriteAheadLog.iter_records(path)
        assert record.kind == EPOCH_RECORD

    def test_torn_tail_is_silent_stop(self, tmp_path):
        """A write cut mid-record (the crash case) truncates cleanly:
        the intact prefix is returned, no exception."""
        path = tmp_path / "w.wal"
        ids = np.array([1, 2], dtype=np.uint64)
        vals = np.array([5, 6], dtype=np.int64)
        rs = np.array([0, 0], dtype=np.uint8)
        with WriteAheadLog(path) as wal:
            wal.append_chunk(ids, vals, rs)
            wal.append_chunk(ids, vals, rs)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        records = list(WriteAheadLog.iter_records(path))
        assert len(records) == 1

    def test_corrupt_payload_rejected(self, tmp_path):
        """Bit-rot *inside* a record (CRC mismatch) must fail loudly."""
        path = tmp_path / "w.wal"
        ids = np.array([1, 2], dtype=np.uint64)
        vals = np.array([5, 6], dtype=np.int64)
        rs = np.array([0, 0], dtype=np.uint8)
        with WriteAheadLog(path) as wal:
            wal.append_chunk(ids, vals, rs)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            list(WriteAheadLog.iter_records(path))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "w.wal"
        path.write_bytes(b"NOTAWAL0")
        with pytest.raises(TraceFormatError):
            list(WriteAheadLog.iter_records(path))

    def test_recover_replays_to_precrash_state(self, tiny_trace, tmp_path):
        """checkpoint + WAL tail == the crashed instance's SRAM: every
        chunk drained after the checkpoint is replayed bit-identically."""
        packets = tiny_trace.packets
        wal_path = tmp_path / "w.wal"
        ck_path = tmp_path / "ck.npz"
        caesar = Caesar(
            make_config(), buffer_capacity=64, wal=WriteAheadLog(wal_path)
        )
        caesar.process(packets[:2000])
        caesar.save_checkpoint(ck_path)
        caesar.process(packets[2000:5000])
        caesar._wal.flush()  # the crash point: buffer lost, WAL durable

        result = recover(ck_path, wal_path)
        assert result.chunks_replayed > 0
        np.testing.assert_array_equal(
            result.caesar.counters.values, caesar.counters.values
        )
        # A crash loses the cache residents; what recovery restores is
        # exactly the mass that durably landed in the SRAM.
        assert result.caesar.recorded_mass == result.caesar.counters.total_mass
        assert result.caesar.recorded_mass < caesar.recorded_mass


class TestHealth:
    def test_healthy_run_is_ok(self, tiny_trace):
        caesar = Caesar(make_config())
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        snap = health_of(caesar)
        assert snap.status == "ok" and snap.healthy
        assert snap.lost_eviction_mass == 0
        assert snap.recorded_mass == tiny_trace.num_packets

    def test_lost_mass_goes_critical(self, tiny_trace):
        caesar = Caesar(
            make_config(),
            buffer_capacity=64,
            fault_plan=FaultPlan(drop_chunk=0.5, seed=3),
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        snap = health_of(caesar)
        assert snap.lost_eviction_mass > 0
        assert snap.status == "critical"
        assert not snap.healthy
        assert snap.effective_mass == caesar.effective_mass

    def test_mild_faults_degrade(self, tiny_trace):
        caesar = Caesar(
            make_config(),
            buffer_capacity=64,
            fault_plan=FaultPlan(duplicate_chunk=0.05, seed=3),
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert health_of(caesar).status in ("degraded", "critical")

    def test_observe_health_publishes_gauges(self, tiny_trace):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        caesar = Caesar(make_config(), registry=registry)
        caesar.process(tiny_trace.packets)
        caesar.finalize()  # calls observe_health internally
        gauges = registry.snapshot()["gauges"]
        assert gauges["caesar.health.status_level"] == 0.0
        assert gauges["caesar.health.effective_mass"] == tiny_trace.num_packets
        assert gauges["caesar.health.lost_eviction_mass"] == 0.0

    def test_observe_health_disabled_registry_is_noop(self, tiny_trace):
        from repro.obs.registry import NULL_REGISTRY

        caesar = Caesar(make_config())
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert observe_health(NULL_REGISTRY, caesar) is None


class TestEstimatorCompensation:
    def test_compensation_subtracts_lost_mass(self, tiny_trace):
        """CSM's noise term is n/L; with mass dropped, the compensated
        estimate uses effective n and sits above the raw one."""
        caesar = Caesar(
            make_config(),
            buffer_capacity=64,
            fault_plan=FaultPlan(drop_chunk=0.3, seed=9),
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.effective_mass < caesar.recorded_mass
        ids = tiny_trace.flows.ids
        comp = caesar.estimate(ids, clip_negative=False)
        raw = caesar.estimate(ids, compensate=False, clip_negative=False)
        assert comp.mean() > raw.mean()

    def test_no_injector_compensation_is_identity(self, tiny_trace):
        caesar = Caesar(make_config())
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.effective_mass == caesar.recorded_mass
        ids = tiny_trace.flows.ids
        np.testing.assert_array_equal(
            caesar.estimate(ids), caesar.estimate(ids, compensate=False)
        )


class TestMeasureApi:
    def test_measure_checkpoint_then_resume(self, tiny_trace, tmp_path):
        from repro.api import measure

        ck = tmp_path / "ck.npz"
        full = measure(
            tiny_trace.packets,
            sram_kb=2,
            cache_kb=1,
            checkpoint_every=3000,
            checkpoint_path=ck,
        )
        resumed = measure(tiny_trace.packets, resume_from=ck)
        assert resumed.num_packets == full.num_packets
        np.testing.assert_array_equal(
            full.caesar.counters.values, resumed.caesar.counters.values
        )

    def test_measure_checkpoint_every_requires_path(self, tiny_trace):
        from repro.api import measure
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            measure(tiny_trace.packets, sram_kb=2, cache_kb=1, checkpoint_every=1000)

    def test_measure_fault_plan(self, tiny_trace):
        from repro.api import measure

        result = measure(
            tiny_trace.packets, sram_kb=2, cache_kb=1, fault_plan=FaultPlan(drop_chunk=0.1)
        )
        assert result.caesar._injector is not None


class TestResumeErrors:
    def test_resume_bad_version_rejected(self, tiny_trace, tmp_path):
        caesar = Caesar(make_config())
        caesar.process(tiny_trace.packets[:500])
        ckpt = caesar.checkpoint()
        ckpt.meta["format_version"] = 999
        with pytest.raises(TraceFormatError):
            ckpt.restore()


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    cut_frac=st.floats(min_value=0.05, max_value=0.95),
    engine=st.sampled_from(["batched", "runs", "scalar"]),
)
@settings(max_examples=12, deadline=None)
def test_property_kill_resume_bit_identity(tiny_trace_packets, seed, cut_frac, engine):
    """Any seed, any cut point, either engine: resume == uninterrupted."""
    packets = tiny_trace_packets
    cut = max(1, int(len(packets) * cut_frac))
    cfg = make_config(engine=engine, seed=seed)

    straight = Caesar(cfg)
    straight.process(packets)
    straight.finalize()

    crashed = Caesar(cfg)
    crashed.process(packets[:cut])
    resumed = Caesar.resume(crashed.checkpoint())
    resumed.process(packets[cut:])
    resumed.finalize()

    np.testing.assert_array_equal(straight.counters.values, resumed.counters.values)
    assert straight.cache.stats == resumed.cache.stats


@pytest.mark.slow
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    cut_frac=st.floats(min_value=0.01, max_value=0.99),
    engine=st.sampled_from(["batched", "runs", "scalar"]),
    replacement=st.sampled_from(["lru", "random"]),
)
@settings(max_examples=150, deadline=None)
def test_property_kill_resume_sweep(
    tiny_trace_packets, seed, cut_frac, engine, replacement
):
    """The long version of the sweep: both policies, wide seed range."""
    packets = tiny_trace_packets
    cut = max(1, int(len(packets) * cut_frac))
    cfg = make_config(engine=engine, replacement=replacement, seed=seed)

    straight = Caesar(cfg)
    straight.process(packets)
    straight.finalize()

    crashed = Caesar(cfg)
    crashed.process(packets[:cut])
    resumed = Caesar.resume(crashed.checkpoint())
    resumed.process(packets[cut:])
    resumed.finalize()

    np.testing.assert_array_equal(straight.counters.values, resumed.counters.values)
    assert straight.cache.stats == resumed.cache.stats


@pytest.fixture(scope="module")
def tiny_trace_packets():
    """A module-scoped packet array for the hypothesis sweeps (function
    fixtures don't mix with @given)."""
    from repro.traffic.distributions import calibrate_zipf_to_mean
    from repro.traffic.flows import FlowSet
    from repro.traffic.packets import uniform_stream

    flows = FlowSet.generate(200, calibrate_zipf_to_mean(27.32, 600), seed=13)
    return uniform_stream(flows, seed=14)
