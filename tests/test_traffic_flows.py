"""Unit tests for FlowSet."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traffic.distributions import BoundedZipf
from repro.traffic.flows import FlowSet


class TestFlowSetGenerate:
    def test_counts(self):
        fs = FlowSet.generate(500, BoundedZipf(1.5, 100), seed=1)
        assert fs.num_flows == 500
        assert fs.num_packets == fs.sizes.sum()
        assert fs.mean_size == pytest.approx(fs.num_packets / 500)

    def test_ids_unique(self):
        fs = FlowSet.generate(1000, BoundedZipf(1.5, 100), seed=2)
        assert len(np.unique(fs.ids)) == 1000

    def test_deterministic(self):
        a = FlowSet.generate(100, BoundedZipf(1.5, 50), seed=3)
        b = FlowSet.generate(100, BoundedZipf(1.5, 50), seed=3)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.sizes, b.sizes)

    def test_rejects_zero_flows(self):
        with pytest.raises(ConfigError):
            FlowSet.generate(0, BoundedZipf(1.5, 50))


class TestFlowSetInvariants:
    def test_rejects_misaligned(self):
        with pytest.raises(ConfigError):
            FlowSet(ids=np.array([1, 2], dtype=np.uint64), sizes=np.array([1], dtype=np.int64))

    def test_rejects_zero_sizes(self):
        with pytest.raises(ConfigError):
            FlowSet(ids=np.array([1], dtype=np.uint64), sizes=np.array([0], dtype=np.int64))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ConfigError):
            FlowSet(
                ids=np.array([5, 5], dtype=np.uint64), sizes=np.array([1, 2], dtype=np.int64)
            )


class TestFlowSetQueries:
    def test_size_of(self):
        fs = FlowSet(
            ids=np.array([10, 20, 30], dtype=np.uint64),
            sizes=np.array([1, 2, 3], dtype=np.int64),
        )
        assert fs.size_of(20) == 2
        with pytest.raises(KeyError):
            fs.size_of(99)

    def test_top(self):
        fs = FlowSet(
            ids=np.array([10, 20, 30], dtype=np.uint64),
            sizes=np.array([5, 50, 7], dtype=np.int64),
        )
        top2 = fs.top(2)
        assert top2.sizes.tolist() == [50, 7]
        assert top2.ids.tolist() == [20, 30]

    def test_fraction_below_mean_heavy_tail(self):
        fs = FlowSet.generate(5000, BoundedZipf(1.8, 5000), seed=4)
        assert fs.fraction_below_mean() > 0.8
