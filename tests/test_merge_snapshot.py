"""Tests for distributed merging and counter snapshots."""

import numpy as np
import pytest

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.merge import MergedMeasurement, merge
from repro.errors import ConfigError, QueryError, TraceFormatError
from repro.sram.snapshot import load_counters, save_counters


def make_caesar(seed=5, bank=512):
    return Caesar(
        CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=bank, seed=seed)
    )


class TestMerge:
    def test_merged_equals_single_instance(self, tiny_trace):
        """Linearity: merging two half-streams ~ measuring the whole
        stream (identical counter sums; split randomness differs but
        CSM's sum-decoding is invariant to it)."""
        half = len(tiny_trace.packets) // 2
        a, b = make_caesar(), make_caesar()
        a.process(tiny_trace.packets[:half])
        b.process(tiny_trace.packets[half:])
        a.finalize()
        b.finalize()
        merged = merge([a, b])

        single = make_caesar()
        single.process(tiny_trace.packets)
        single.finalize()

        assert merged.recorded_mass == tiny_trace.num_packets
        est_merged = merged.estimate(tiny_trace.flows.ids)
        est_single = single.estimate(tiny_trace.flows.ids)
        # Same flows' counters hold the same per-flow mass; only the
        # random remainder placement differs (bounded by k per eviction
        # per counter — tiny relative to the counters themselves).
        assert np.abs(est_merged - est_single).mean() < 0.1 * max(
            1.0, np.abs(est_single).mean()
        )
        # Totals match exactly.
        assert merged.counter_values.sum() == single.counters.total_mass

    def test_all_methods(self, tiny_trace):
        a = make_caesar()
        a.process(tiny_trace.packets)
        a.finalize()
        merged = merge([a])
        for method in ("csm", "mlm", "median"):
            assert merged.estimate(tiny_trace.flows.ids[:5], method).shape == (5,)
        with pytest.raises(ConfigError):
            merged.estimate(tiny_trace.flows.ids[:5], "nope")

    def test_incompatible_configs_rejected(self, tiny_trace):
        a, b = make_caesar(seed=5), make_caesar(seed=6)
        for inst in (a, b):
            inst.process(tiny_trace.packets)
            inst.finalize()
        with pytest.raises(ConfigError):
            merge([a, b])
        c = make_caesar(seed=5, bank=256)
        c.process(tiny_trace.packets)
        c.finalize()
        with pytest.raises(ConfigError):
            merge([a, c])

    def test_unfinalized_rejected(self, tiny_trace):
        a = make_caesar()
        a.process(tiny_trace.packets)
        with pytest.raises(QueryError):
            merge([a])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            MergedMeasurement([])


class TestSnapshots:
    def test_roundtrip(self, tmp_path):
        values = np.array([0, 5, 1_000_000, 2**20 - 1], dtype=np.int64)
        path = save_counters(tmp_path / "c.npz", values, counter_capacity=2**20 - 1)
        loaded, meta = load_counters(path)
        np.testing.assert_array_equal(loaded, values)
        assert meta == {}

    def test_metadata(self, tmp_path):
        values = np.zeros(8, dtype=np.int64)
        path = save_counters(
            tmp_path / "c.npz", values, 255, metadata={"epoch": 3, "mass": 12345}
        )
        _, meta = load_counters(path)
        assert meta == {"epoch": 3, "mass": 12345}

    def test_compact_on_disk(self, tmp_path):
        """A 20-bit snapshot should be far smaller than the int64 dump."""
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**20, size=37_503).astype(np.int64)
        packed_path = save_counters(tmp_path / "packed.npz", values, 2**20 - 1)
        raw_path = tmp_path / "raw.npz"
        np.savez(raw_path, values=values)
        assert packed_path.stat().st_size < 0.55 * raw_path.stat().st_size

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"junk")
        with pytest.raises(TraceFormatError):
            load_counters(path)

    def test_truncation_rejected(self, tmp_path):
        """A half-written file (disk full, crash) must not parse —
        zipfile's EOFError/BadZipFile surface as TraceFormatError."""
        values = np.arange(256, dtype=np.int64)
        path = save_counters(tmp_path / "c.npz", values, 2**20 - 1)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            load_counters(path)

    def test_bitrot_fails_checksum(self, tmp_path):
        """Valid zip, tampered words: the content checksum catches what
        the container format cannot."""
        values = np.arange(256, dtype=np.int64)
        path = save_counters(tmp_path / "c.npz", values, 2**20 - 1)
        with np.load(path) as z:
            members = {k: z[k].copy() for k in z.files}
        members["words"][0] ^= 1
        np.savez_compressed(path, **members)
        with pytest.raises(TraceFormatError, match="checksum"):
            load_counters(path)

    def test_wrong_width_tamper_rejected(self, tmp_path):
        """Rewriting the width member desyncs it from the checksum."""
        values = np.arange(64, dtype=np.int64)
        path = save_counters(tmp_path / "c.npz", values, 2**20 - 1)
        with np.load(path) as z:
            members = {k: z[k].copy() for k in z.files}
        members["width"] = np.int64(int(members["width"]) - 4)
        np.savez_compressed(path, **members)
        with pytest.raises(TraceFormatError):
            load_counters(path)

    def test_legacy_file_without_checksum_loads(self, tmp_path):
        """Snapshots from before the checksum member still round-trip."""
        values = np.arange(64, dtype=np.int64)
        path = save_counters(tmp_path / "c.npz", values, 2**20 - 1)
        with np.load(path) as z:
            members = {k: z[k].copy() for k in z.files if k != "checksum"}
        np.savez_compressed(path, **members)
        loaded, _ = load_counters(path)
        np.testing.assert_array_equal(loaded, values)

    def test_metadata_roundtrip_with_checksum(self, tmp_path):
        values = np.arange(32, dtype=np.int64)
        path = save_counters(
            tmp_path / "c.npz", values, 255, metadata={"epoch": 9, "wal_seq": 44}
        )
        loaded, meta = load_counters(path)
        np.testing.assert_array_equal(loaded, values)
        assert meta == {"epoch": 9, "wal_seq": 44}

    def test_caesar_counters_roundtrip(self, tiny_trace, tmp_path):
        caesar = make_caesar()
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        path = save_counters(
            tmp_path / "caesar.npz",
            caesar.counters.values,
            caesar.config.counter_capacity,
        )
        loaded, _ = load_counters(path)
        np.testing.assert_array_equal(loaded, caesar.counters.values)
