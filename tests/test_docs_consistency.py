"""Meta-tests: documentation, packaging, and registry consistency."""

import pathlib

import pytest

REPO = pathlib.Path(__file__).parent.parent


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/architecture.md", "docs/theory.md"],
    )
    def test_required_docs_present(self, name):
        path = REPO / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 500


class TestDesignCoversRegistry:
    def test_every_experiment_mentioned_in_design(self):
        import repro.experiments.registry as registry

        design = (REPO / "DESIGN.md").read_text()
        for name, runner in registry._REGISTRY.items():
            module = runner.__module__.rsplit(".", 1)[1]
            assert (
                name in design or module in design
            ), f"experiment {name!r} not documented in DESIGN.md"

    def test_every_paper_figure_in_experiments_md(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for fig in ("Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
            assert fig in experiments


class TestPublicApiDocumented:
    def test_all_public_symbols_have_docstrings(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if name == "__version__":
                continue
            assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_every_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name == "repro.__main__":
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"


class TestExamplesAreRunnableScripts:
    def test_examples_have_main_guards_and_docstrings(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3, "deliverable (b): at least three examples"
        for path in examples:
            text = path.read_text()
            assert text.startswith('"""'), f"{path.name}: no docstring"
            assert '__name__ == "__main__"' in text, f"{path.name}: no main guard"
            assert "Run:" in text, f"{path.name}: no run instructions"


class TestPackaging:
    def test_py_typed_shipped(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()

    def test_version_consistent(self):
        import repro

        pyproject = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject
