"""Shared fixtures: small deterministic traces and configured schemes,
plus deadline-polling helpers for tests that wait on worker processes."""

from __future__ import annotations

import time
from typing import Callable

import numpy as np
import pytest

from repro.traffic.distributions import BoundedZipf, calibrate_zipf_to_mean
from repro.traffic.flows import FlowSet
from repro.traffic.packets import uniform_stream
from repro.traffic.trace import Trace


def wait_until(
    predicate: Callable[[], bool],
    *,
    timeout: float = 30.0,
    interval: float = 0.01,
    desc: str = "condition",
) -> None:
    """Poll ``predicate`` until true or ``timeout`` seconds pass.

    The runtime tests wait on cross-process effects (a worker dying, a
    queue filling, a reshard phase advancing) whose latency varies with
    machine load; fixed sleeps are either flaky or slow. Deadline
    polling is both fast on the happy path and generous under load —
    use this instead of ``time.sleep`` whenever a test waits for
    anything another process does.
    """
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out after {timeout:.0f}s waiting for {desc}")
        time.sleep(interval)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """~8k packets over 300 flows: fast enough for per-test use."""
    flows = FlowSet.generate(300, calibrate_zipf_to_mean(27.32, 800), seed=3)
    return Trace(packets=uniform_stream(flows, seed=4), flows=flows)


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """~50k packets over 2000 flows: for integration-grade checks."""
    flows = FlowSet.generate(2000, calibrate_zipf_to_mean(27.32, 5000), seed=7)
    return Trace(packets=uniform_stream(flows, seed=8), flows=flows)


@pytest.fixture(scope="session")
def heavy_dist() -> BoundedZipf:
    return calibrate_zipf_to_mean(27.32, 5000)
