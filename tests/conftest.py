"""Shared fixtures: small deterministic traces and configured schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.distributions import BoundedZipf, calibrate_zipf_to_mean
from repro.traffic.flows import FlowSet
from repro.traffic.packets import uniform_stream
from repro.traffic.trace import Trace


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """~8k packets over 300 flows: fast enough for per-test use."""
    flows = FlowSet.generate(300, calibrate_zipf_to_mean(27.32, 800), seed=3)
    return Trace(packets=uniform_stream(flows, seed=4), flows=flows)


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """~50k packets over 2000 flows: for integration-grade checks."""
    flows = FlowSet.generate(2000, calibrate_zipf_to_mean(27.32, 5000), seed=7)
    return Trace(packets=uniform_stream(flows, seed=8), flows=flows)


@pytest.fixture(scope="session")
def heavy_dist() -> BoundedZipf:
    return calibrate_zipf_to_mean(27.32, 5000)
