"""Unit tests for the Trace container and the default paper trace."""

import numpy as np
import pytest

from repro.errors import ConfigError, TraceFormatError
from repro.traffic.trace import (
    PAPER_MEAN_FLOW_SIZE,
    Trace,
    default_paper_trace,
    small_test_trace,
)


class TestTraceBasics:
    def test_quantities(self, tiny_trace):
        assert tiny_trace.num_packets == len(tiny_trace.packets)
        assert tiny_trace.num_flows == len(tiny_trace.flows.ids)
        assert tiny_trace.mean_flow_size == pytest.approx(
            tiny_trace.num_packets / tiny_trace.num_flows
        )

    def test_rejects_mismatched_ground_truth(self, tiny_trace):
        with pytest.raises(ConfigError):
            Trace(packets=tiny_trace.packets[:-1], flows=tiny_trace.flows)

    def test_from_packets_recovers_truth(self, tiny_trace):
        rebuilt = Trace.from_packets(tiny_trace.packets)
        order_a = np.argsort(rebuilt.flows.ids)
        order_b = np.argsort(tiny_trace.flows.ids)
        np.testing.assert_array_equal(
            rebuilt.flows.ids[order_a], tiny_trace.flows.ids[order_b]
        )
        np.testing.assert_array_equal(
            rebuilt.flows.sizes[order_a], tiny_trace.flows.sizes[order_b]
        )


class TestHistograms:
    def test_size_histogram_conserves_flows(self, tiny_trace):
        _, counts = tiny_trace.size_histogram()
        assert counts.sum() == tiny_trace.num_flows

    def test_log_binned_conserves_flows(self, tiny_trace):
        _, counts = tiny_trace.log_binned_histogram()
        assert counts.sum() == tiny_trace.num_flows

    def test_log_binned_various_granularity(self, tiny_trace):
        for bpd in (1, 2, 5):
            edges, counts = tiny_trace.log_binned_histogram(bins_per_decade=bpd)
            assert counts.sum() == tiny_trace.num_flows
            assert np.all(np.diff(edges) > 0)


class TestPersistence:
    def test_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        tiny_trace.save(path)
        loaded = Trace.load(path)
        np.testing.assert_array_equal(loaded.packets, tiny_trace.packets)
        np.testing.assert_array_equal(loaded.flows.ids, tiny_trace.flows.ids)
        np.testing.assert_array_equal(loaded.flows.sizes, tiny_trace.flows.sizes)

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an npz file")
        with pytest.raises(TraceFormatError):
            Trace.load(path)


class TestDefaultPaperTrace:
    def test_matches_paper_statistics(self):
        trace = default_paper_trace(scale=0.01, seed=1)
        # Mean flow size within sampling noise of the paper's 27.32.
        assert abs(trace.mean_flow_size - PAPER_MEAN_FLOW_SIZE) < 3.0
        # Heavy-tail property (paper: > 92 %; allow sampling slack).
        assert trace.fraction_below_mean() > 0.90

    def test_scaling_controls_flow_count(self):
        t1 = default_paper_trace(scale=0.01, seed=1)
        t2 = default_paper_trace(scale=0.02, seed=1)
        assert abs(t2.num_flows / t1.num_flows - 2.0) < 0.1

    def test_deterministic(self):
        a = default_paper_trace(scale=0.005, seed=9)
        b = default_paper_trace(scale=0.005, seed=9)
        np.testing.assert_array_equal(a.packets, b.packets)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigError):
            default_paper_trace(scale=0.0)
        with pytest.raises(ConfigError):
            default_paper_trace(scale=1.5)

    def test_small_test_trace_shape(self):
        t = small_test_trace(num_flows=500, seed=2)
        assert t.num_flows == 500
        assert t.fraction_below_mean() > 0.85
