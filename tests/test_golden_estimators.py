"""Golden seed-stability tests for the estimators.

A fixed seed must keep producing the *same numbers* release over
release: any drift in the cache, the splitter, the hash family, the
RNG-consumption order, or the CSM/MLM decoders shows up here as a
mismatch against checked-in golden values, before it can silently move
every experiment. (Engine parity is covered separately in
tests/test_engine_equivalence.py; these goldens pin the batched
default.)

Regenerate after an *intentional* numerical change with::

    PYTHONPATH=src python tests/test_golden_estimators.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.traffic.trace import default_paper_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_estimators.json"

#: Workload + configuration the goldens were generated under. Fixed
#: literals on purpose: deriving them (e.g. via ``for_budgets``) would
#: let unrelated sizing changes silently re-home the goldens.
TRACE_SCALE = 0.003
TRACE_SEED = 7
CONFIG = dict(
    cache_entries=256,
    entry_capacity=16,
    k=3,
    bank_size=1024,
    counter_capacity=2**20 - 1,
    seed=0x601D,
    engine="batched",
)


def _compute() -> dict:
    trace = default_paper_trace(scale=TRACE_SCALE, seed=TRACE_SEED)
    caesar = Caesar(CaesarConfig(**CONFIG))
    caesar.process(trace.packets)
    caesar.finalize()

    # A deterministic probe set: the 8 largest and 4 smallest flows
    # (stable under the fixed trace seed) — heads stress the shared
    # counters, tails stress the noise subtraction.
    order = np.argsort(trace.flows.sizes, kind="stable")
    probe = np.concatenate([order[-8:], order[:4]])
    ids = trace.flows.ids[probe]

    csm = caesar.estimate(ids, "csm")
    mlm = caesar.estimate(ids, "mlm")
    lo_p, hi_p = caesar.confidence_interval(ids, "csm", alpha=0.95,
                                            variance_model="paper")
    lo_e, hi_e = caesar.confidence_interval(ids, "csm", alpha=0.95,
                                            variance_model="empirical")
    return {
        "trace": {"scale": TRACE_SCALE, "seed": TRACE_SEED,
                  "num_packets": int(trace.num_packets),
                  "num_flows": int(trace.num_flows)},
        "config": {k: v for k, v in CONFIG.items()},
        "flow_ids": [int(f) for f in ids],
        "true_sizes": [int(s) for s in trace.flows.sizes[probe]],
        "csm": csm.tolist(),
        "mlm": mlm.tolist(),
        "ci_paper_low": lo_p.tolist(),
        "ci_paper_high": hi_p.tolist(),
        "ci_empirical_low": lo_e.tolist(),
        "ci_empirical_high": hi_e.tolist(),
    }


def test_fixed_seed_estimates_match_goldens():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _compute()
    assert current["trace"] == golden["trace"], "workload drifted"
    assert current["flow_ids"] == golden["flow_ids"], "probe set drifted"
    assert current["true_sizes"] == golden["true_sizes"]
    for key in ("csm", "mlm", "ci_paper_low", "ci_paper_high",
                "ci_empirical_low", "ci_empirical_high"):
        np.testing.assert_allclose(
            current[key], golden[key], rtol=1e-9, atol=0.0,
            err_msg=f"{key} drifted from golden values",
        )


def test_goldens_are_sane():
    """The checked-in numbers themselves must be plausible estimates:
    heads within 2x of truth, intervals ordered and containing the
    point estimate."""
    golden = json.loads(GOLDEN_PATH.read_text())
    truth = np.array(golden["true_sizes"], dtype=float)
    csm = np.array(golden["csm"])
    heads = truth >= np.median(truth)
    assert np.all(np.abs(csm[heads] - truth[heads]) <= truth[heads]), \
        "golden CSM head estimates are off by more than 100%"
    for model in ("paper", "empirical"):
        lo = np.array(golden[f"ci_{model}_low"])
        hi = np.array(golden[f"ci_{model}_high"])
        assert np.all(lo <= hi)
        assert np.all(lo <= csm) and np.all(csm <= hi)


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to rewrite the golden file")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_compute(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
