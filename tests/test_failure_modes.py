"""Failure-injection and boundary-condition tests.

Degenerate geometries, saturation, adversarial inputs — the conditions
a deployment hits when misconfigured, which must degrade loudly (error
or accounted loss), never silently corrupt results.
"""

import numpy as np
import pytest

from repro.baselines.case import Case, CaseConfig
from repro.baselines.rcs import RCS, RCSConfig
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import ConfigError, QueryError
from repro.resilience.faults import FaultInjector, FaultPlan, parse_fault_spec


class TestDegenerateGeometries:
    def test_single_entry_cache(self, tiny_trace):
        """M = 1: every miss evicts; still conserves all mass."""
        caesar = Caesar(
            CaesarConfig(cache_entries=1, entry_capacity=16, k=3, bank_size=256)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.counters.total_mass == tiny_trace.num_packets

    def test_entry_capacity_two(self, tiny_trace):
        """y = 2: overflow on every second packet of a hot flow."""
        caesar = Caesar(
            CaesarConfig(cache_entries=128, entry_capacity=2, k=3, bank_size=256)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.counters.total_mass == tiny_trace.num_packets
        assert caesar.cache.stats.overflow_evictions > 0

    def test_single_counter_bank(self, tiny_trace):
        """L = 1: all flows share the same k counters; estimates
        degenerate to (total - noise) but nothing crashes."""
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=1)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        est = caesar.estimate(tiny_trace.flows.ids)
        # Every flow's estimate is total - total = ~0.
        np.testing.assert_allclose(est, 0.0, atol=1e-6)

    def test_k_equals_one(self, tiny_trace):
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=1, bank_size=1024)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        est = caesar.estimate(tiny_trace.flows.ids)
        assert est.shape == tiny_trace.flows.sizes.shape

    def test_empty_stream(self):
        caesar = Caesar(
            CaesarConfig(cache_entries=4, entry_capacity=4, k=3, bank_size=16)
        )
        caesar.process(np.array([], dtype=np.uint64))
        caesar.finalize()
        est = caesar.estimate(np.array([1, 2], dtype=np.uint64))
        np.testing.assert_allclose(est, 0.0)


class TestSaturation:
    def test_counter_saturation_accounted(self):
        """Counters too narrow for the traffic: mass is lost but the
        loss is visible in saturated_mass, never silent."""
        caesar = Caesar(
            CaesarConfig(
                cache_entries=4, entry_capacity=8, k=3, bank_size=8,
                counter_capacity=10,
            )
        )
        packets = np.full(5000, 7, dtype=np.uint64)
        caesar.process(packets)
        caesar.finalize()
        assert caesar.counters.saturated_mass > 0
        assert (
            caesar.counters.total_mass + caesar.counters.saturated_mass == 5000
        )

    def test_saturated_estimates_underreport_but_finite(self):
        caesar = Caesar(
            CaesarConfig(
                cache_entries=4, entry_capacity=8, k=3, bank_size=8,
                counter_capacity=10,
            )
        )
        caesar.process(np.full(5000, 7, dtype=np.uint64))
        caesar.finalize()
        est = caesar.estimate(np.array([7], dtype=np.uint64))
        assert np.isfinite(est).all()
        assert est[0] <= 3 * 10  # can't exceed k * capacity


class TestAdversarialInputs:
    def test_all_packets_same_flow(self):
        caesar = Caesar(
            CaesarConfig(cache_entries=16, entry_capacity=54, k=3, bank_size=512)
        )
        caesar.process(np.full(50_000, 99, dtype=np.uint64))
        caesar.finalize()
        est = caesar.estimate(np.array([99], dtype=np.uint64))
        assert est[0] == pytest.approx(50_000, rel=0.01)

    def test_all_flows_distinct(self):
        """Worst-case mice: every packet a new flow."""
        packets = np.arange(20_000, dtype=np.uint64)
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=54, k=3, bank_size=2048)
        )
        caesar.process(packets)
        caesar.finalize()
        assert caesar.counters.total_mass == 20_000
        est = caesar.estimate(packets[:100], clip_negative=False)
        # Aggregate unbiasedness holds even in the all-mice regime.
        assert abs(est.mean() - 1.0) < 2.0

    def test_query_unknown_flows(self, tiny_trace):
        """Flows never seen should estimate ~0 (pure noise)."""
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=2048)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        ghosts = np.arange(10**6, 10**6 + 200, dtype=np.uint64)
        est = caesar.estimate(ghosts, clip_negative=False)
        assert abs(est.mean()) < 3 * tiny_trace.mean_flow_size

    def test_rcs_zero_then_query(self):
        rcs = RCS(RCSConfig(k=3, bank_size=64))
        est = rcs.estimate(np.array([5], dtype=np.uint64))
        assert est[0] == 0.0

    def test_double_finalize_then_estimate_stable(self, tiny_trace):
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=256)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        a = caesar.estimate(tiny_trace.flows.ids)
        caesar.finalize()
        b = caesar.estimate(tiny_trace.flows.ids)
        np.testing.assert_array_equal(a, b)

    def test_estimate_before_any_processing(self):
        caesar = Caesar(
            CaesarConfig(cache_entries=4, entry_capacity=4, k=3, bank_size=16)
        )
        with pytest.raises(QueryError):
            caesar.estimate(np.array([1], dtype=np.uint64))


def _fault_caesar(plan, *, engine="batched", seed=5):
    return Caesar(
        CaesarConfig(
            cache_entries=64, entry_capacity=16, k=3, bank_size=512,
            seed=seed, engine=engine,
        ),
        buffer_capacity=64,
        fault_plan=plan,
    )


class TestFaultPlan:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop_chunk=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(flip_bit=-0.1)

    def test_negative_stuck_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(stuck_counters=-1)

    def test_disabled_plan_builds_no_injector(self, tiny_trace):
        caesar = _fault_caesar(FaultPlan())
        assert caesar._injector is None
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan())

    def test_roundtrip_dict(self):
        plan = FaultPlan(drop_chunk=0.1, wipe_cache_at=(9000, 5000), seed=3)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.wipe_cache_at == (5000, 9000)  # canonical order

    def test_parse_fault_spec(self):
        plan = parse_fault_spec("drop=0.1,dup=0.05,flip=0.01,wipe=5000+9000,stuck=3,seed=9")
        assert plan.drop_chunk == 0.1
        assert plan.duplicate_chunk == 0.05
        assert plan.flip_bit == 0.01
        assert plan.wipe_cache_at == (5000, 9000)
        assert plan.stuck_counters == 3
        assert plan.seed == 9

    def test_parse_fault_spec_rejects_garbage(self):
        for bad in ("drop", "nope=1", "drop=abc", "drop=2.0"):
            with pytest.raises(ConfigError):
                parse_fault_spec(bad)


class TestFaultInjection:
    """Fault runs must degrade loudly: every lost/extra unit accounted."""

    def test_no_fault_path_is_untouched(self, tiny_trace):
        """A run without a plan and a run with plan=None are the same
        objects on the hot path (no wrapper, no overhead)."""
        caesar = _fault_caesar(None)
        assert caesar._injector is None
        assert caesar._drain_fn == caesar._drain

    def test_drop_accounting_conserves_mass(self, tiny_trace):
        caesar = _fault_caesar(FaultPlan(drop_chunk=0.2, seed=11))
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        inj = caesar._injector
        assert inj.dropped_chunks > 0
        # Landed + dropped == seen: nothing vanishes unaccounted.
        assert caesar.counters.total_mass + inj.dropped_mass == tiny_trace.num_packets
        assert caesar.effective_mass == tiny_trace.num_packets - inj.dropped_mass

    def test_duplicate_accounting(self, tiny_trace):
        caesar = _fault_caesar(FaultPlan(duplicate_chunk=0.2, seed=11))
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        inj = caesar._injector
        assert inj.duplicated_chunks > 0
        assert caesar.counters.total_mass == tiny_trace.num_packets + inj.duplicated_mass
        assert caesar.effective_mass == tiny_trace.num_packets + inj.duplicated_mass

    def test_bitflip_accounting(self, tiny_trace):
        caesar = _fault_caesar(FaultPlan(flip_bit=0.5, seed=11))
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        inj = caesar._injector
        assert inj.bitflip_events > 0
        assert caesar.counters.total_mass == tiny_trace.num_packets + inj.bitflip_delta

    def test_cache_wipe_fires_once_per_trigger(self, tiny_trace):
        mid = len(tiny_trace.packets) // 2
        caesar = _fault_caesar(FaultPlan(wipe_cache_at=(mid,)))
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        inj = caesar._injector
        assert inj._wipes_done == 1
        assert inj.wiped_mass > 0
        assert caesar.counters.total_mass + inj.wiped_mass == tiny_trace.num_packets

    def test_stuck_counters_pinned(self, tiny_trace):
        caesar = _fault_caesar(FaultPlan(stuck_counters=5, stuck_value=7))
        pinned_before = caesar.counters.values.copy()
        assert (pinned_before == 7).sum() == 5
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert (caesar.counters.values[pinned_before == 7] == 7).all()

    def test_identical_plans_are_deterministic(self, tiny_trace):
        plan = FaultPlan(drop_chunk=0.1, duplicate_chunk=0.1, flip_bit=0.05, seed=21)
        runs = []
        for _ in range(2):
            caesar = _fault_caesar(plan)
            caesar.process(tiny_trace.packets)
            caesar.finalize()
            runs.append(caesar)
        np.testing.assert_array_equal(runs[0].counters.values, runs[1].counters.values)
        assert runs[0]._injector.lost_mass == runs[1]._injector.lost_mass
        assert runs[0]._injector.mass_delta == runs[1]._injector.mass_delta

    def test_scalar_engine_faults(self, tiny_trace):
        caesar = _fault_caesar(FaultPlan(drop_chunk=0.1, seed=11), engine="scalar")
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        inj = caesar._injector
        assert inj.dropped_mass > 0
        assert caesar.counters.total_mass + inj.dropped_mass == tiny_trace.num_packets

    def test_case_faults_on_cache_path(self, tiny_trace):
        cfg = CaseConfig.for_budgets(
            sram_kb=0.4,  # ~10-bit counters at one per flow
            cache_kb=0.5,
            num_packets=tiny_trace.num_packets,
            num_flows=tiny_trace.num_flows,
            max_value=float(tiny_trace.flows.sizes.max()),
        )
        case = Case(cfg, fault_plan=FaultPlan(drop_chunk=0.2, seed=11))
        case.process(tiny_trace.packets)
        case.finalize()
        assert case._injector.dropped_mass > 0
        est = case.estimate(tiny_trace.flows.ids)
        assert np.isfinite(est).all()

    def test_rcs_faults_and_compensation(self, tiny_trace):
        cfg = RCSConfig.for_budget(2, k=3)
        rcs = RCS(cfg, fault_plan=FaultPlan(drop_chunk=0.2, seed=11))
        rcs.process(tiny_trace.packets)
        inj = rcs._injector
        assert inj.dropped_mass > 0
        assert rcs.effective_mass == rcs.recorded_mass - inj.dropped_mass
        est = rcs.estimate(tiny_trace.flows.ids)
        assert np.isfinite(est).all()
