"""Failure-injection and boundary-condition tests.

Degenerate geometries, saturation, adversarial inputs — the conditions
a deployment hits when misconfigured, which must degrade loudly (error
or accounted loss), never silently corrupt results.
"""

import numpy as np
import pytest

from repro.baselines.rcs import RCS, RCSConfig
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import QueryError


class TestDegenerateGeometries:
    def test_single_entry_cache(self, tiny_trace):
        """M = 1: every miss evicts; still conserves all mass."""
        caesar = Caesar(
            CaesarConfig(cache_entries=1, entry_capacity=16, k=3, bank_size=256)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.counters.total_mass == tiny_trace.num_packets

    def test_entry_capacity_two(self, tiny_trace):
        """y = 2: overflow on every second packet of a hot flow."""
        caesar = Caesar(
            CaesarConfig(cache_entries=128, entry_capacity=2, k=3, bank_size=256)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.counters.total_mass == tiny_trace.num_packets
        assert caesar.cache.stats.overflow_evictions > 0

    def test_single_counter_bank(self, tiny_trace):
        """L = 1: all flows share the same k counters; estimates
        degenerate to (total - noise) but nothing crashes."""
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=1)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        est = caesar.estimate(tiny_trace.flows.ids)
        # Every flow's estimate is total - total = ~0.
        np.testing.assert_allclose(est, 0.0, atol=1e-6)

    def test_k_equals_one(self, tiny_trace):
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=1, bank_size=1024)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        est = caesar.estimate(tiny_trace.flows.ids)
        assert est.shape == tiny_trace.flows.sizes.shape

    def test_empty_stream(self):
        caesar = Caesar(
            CaesarConfig(cache_entries=4, entry_capacity=4, k=3, bank_size=16)
        )
        caesar.process(np.array([], dtype=np.uint64))
        caesar.finalize()
        est = caesar.estimate(np.array([1, 2], dtype=np.uint64))
        np.testing.assert_allclose(est, 0.0)


class TestSaturation:
    def test_counter_saturation_accounted(self):
        """Counters too narrow for the traffic: mass is lost but the
        loss is visible in saturated_mass, never silent."""
        caesar = Caesar(
            CaesarConfig(
                cache_entries=4, entry_capacity=8, k=3, bank_size=8,
                counter_capacity=10,
            )
        )
        packets = np.full(5000, 7, dtype=np.uint64)
        caesar.process(packets)
        caesar.finalize()
        assert caesar.counters.saturated_mass > 0
        assert (
            caesar.counters.total_mass + caesar.counters.saturated_mass == 5000
        )

    def test_saturated_estimates_underreport_but_finite(self):
        caesar = Caesar(
            CaesarConfig(
                cache_entries=4, entry_capacity=8, k=3, bank_size=8,
                counter_capacity=10,
            )
        )
        caesar.process(np.full(5000, 7, dtype=np.uint64))
        caesar.finalize()
        est = caesar.estimate(np.array([7], dtype=np.uint64))
        assert np.isfinite(est).all()
        assert est[0] <= 3 * 10  # can't exceed k * capacity


class TestAdversarialInputs:
    def test_all_packets_same_flow(self):
        caesar = Caesar(
            CaesarConfig(cache_entries=16, entry_capacity=54, k=3, bank_size=512)
        )
        caesar.process(np.full(50_000, 99, dtype=np.uint64))
        caesar.finalize()
        est = caesar.estimate(np.array([99], dtype=np.uint64))
        assert est[0] == pytest.approx(50_000, rel=0.01)

    def test_all_flows_distinct(self):
        """Worst-case mice: every packet a new flow."""
        packets = np.arange(20_000, dtype=np.uint64)
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=54, k=3, bank_size=2048)
        )
        caesar.process(packets)
        caesar.finalize()
        assert caesar.counters.total_mass == 20_000
        est = caesar.estimate(packets[:100], clip_negative=False)
        # Aggregate unbiasedness holds even in the all-mice regime.
        assert abs(est.mean() - 1.0) < 2.0

    def test_query_unknown_flows(self, tiny_trace):
        """Flows never seen should estimate ~0 (pure noise)."""
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=2048)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        ghosts = np.arange(10**6, 10**6 + 200, dtype=np.uint64)
        est = caesar.estimate(ghosts, clip_negative=False)
        assert abs(est.mean()) < 3 * tiny_trace.mean_flow_size

    def test_rcs_zero_then_query(self):
        rcs = RCS(RCSConfig(k=3, bank_size=64))
        est = rcs.estimate(np.array([5], dtype=np.uint64))
        assert est[0] == 0.0

    def test_double_finalize_then_estimate_stable(self, tiny_trace):
        caesar = Caesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=256)
        )
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        a = caesar.estimate(tiny_trace.flows.ids)
        caesar.finalize()
        b = caesar.estimate(tiny_trace.flows.ids)
        np.testing.assert_array_equal(a, b)

    def test_estimate_before_any_processing(self):
        caesar = Caesar(
            CaesarConfig(cache_entries=4, entry_capacity=4, k=3, bank_size=16)
        )
        with pytest.raises(QueryError):
            caesar.estimate(np.array([1], dtype=np.uint64))
