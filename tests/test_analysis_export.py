"""Tests for the CSV exporters."""

import csv

import numpy as np
import pytest

from repro.analysis.export import export_binned_errors, export_result, export_series
from repro.analysis.metrics import binned_errors
from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult


class TestExportBinnedErrors:
    def test_roundtrip(self, tmp_path):
        truth = np.array([1, 2, 5, 50, 500])
        est = truth * 1.1
        bins = binned_errors(est, truth)
        path = export_binned_errors(tmp_path / "bins.csv", bins)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert sum(int(r["flows"]) for r in rows) == 5
        for r in rows:
            assert float(r["mean_abs_rel_error"]) == pytest.approx(0.1, abs=1e-9)

    def test_empty_bins_skipped(self, tmp_path):
        truth = np.array([1, 10_000])
        bins = binned_errors(truth.astype(float), truth, bins_per_decade=1)
        path = export_binned_errors(tmp_path / "bins.csv", bins)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert all(int(r["flows"]) > 0 for r in rows)


class TestExportSeries:
    def test_writes_columns(self, tmp_path):
        path = export_series(
            tmp_path / "s.csv", ["n", "time"], [[1, 2, 3], [10.0, 20.0, 30.0]]
        )
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["n", "time"]
        assert rows[2] == ["2", "20.0"]

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            export_series(tmp_path / "s.csv", ["a"], [[1], [2]])
        with pytest.raises(ConfigError):
            export_series(tmp_path / "s.csv", ["a", "b"], [[1, 2], [3]])


class TestExportResult:
    def test_writes_both_artifacts(self, tmp_path):
        result = ExperimentResult(
            experiment_id="demo",
            title="demo",
            tables=["a table"],
            measured={"x": 1.5},
            paper_reference={"x": "about 1.5"},
        )
        paths = export_result(result, tmp_path / "out")
        assert len(paths) == 2
        csv_text = (tmp_path / "out" / "demo_measured.csv").read_text()
        assert "x,1.5,about 1.5" in csv_text
        report = (tmp_path / "out" / "demo_report.txt").read_text()
        assert "a table" in report
