"""Tests for the CSV exporters."""

import csv

import numpy as np
import pytest

from repro.analysis.export import export_binned_errors, export_result, export_series
from repro.analysis.metrics import binned_errors
from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult


class TestExportBinnedErrors:
    def test_roundtrip(self, tmp_path):
        truth = np.array([1, 2, 5, 50, 500])
        est = truth * 1.1
        bins = binned_errors(est, truth)
        path = export_binned_errors(tmp_path / "bins.csv", bins)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert sum(int(r["flows"]) for r in rows) == 5
        for r in rows:
            assert float(r["mean_abs_rel_error"]) == pytest.approx(0.1, abs=1e-9)

    def test_empty_bins_skipped(self, tmp_path):
        truth = np.array([1, 10_000])
        bins = binned_errors(truth.astype(float), truth, bins_per_decade=1)
        path = export_binned_errors(tmp_path / "bins.csv", bins)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert all(int(r["flows"]) > 0 for r in rows)


class TestExportSeries:
    def test_writes_columns(self, tmp_path):
        path = export_series(
            tmp_path / "s.csv", ["n", "time"], [[1, 2, 3], [10.0, 20.0, 30.0]]
        )
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["n", "time"]
        assert rows[2] == ["2", "20.0"]

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            export_series(tmp_path / "s.csv", ["a"], [[1], [2]])
        with pytest.raises(ConfigError):
            export_series(tmp_path / "s.csv", ["a", "b"], [[1, 2], [3]])


class TestExportResult:
    def test_writes_both_artifacts(self, tmp_path):
        result = ExperimentResult(
            experiment_id="demo",
            title="demo",
            tables=["a table"],
            measured={"x": 1.5},
            paper_reference={"x": "about 1.5"},
        )
        paths = export_result(result, tmp_path / "out")
        assert len(paths) == 2
        csv_text = (tmp_path / "out" / "demo_measured.csv").read_text()
        assert "x,1.5,about 1.5" in csv_text
        report = (tmp_path / "out" / "demo_report.txt").read_text()
        assert "a table" in report


class TestMergeSnapshots:
    @staticmethod
    def _registry(hits: int):
        from repro.obs.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(hits)
        reg.gauge("sram.fill").set(0.5)
        return reg

    def test_namespaces_per_vantage_without_collision(self):
        from repro.analysis.export import merge_snapshots

        merged = merge_snapshots(
            {"vantage0": self._registry(3), "vantage1": self._registry(7)}
        )
        assert merged["counters"]["vantage0.cache.hits"] == 3
        assert merged["counters"]["vantage1.cache.hits"] == 7
        assert merged["gauges"]["vantage0.sram.fill"] == 0.5

    def test_accepts_snapshots_and_registries_mixed(self):
        from repro.analysis.export import merge_snapshots

        snap = self._registry(1).snapshot()
        merged = merge_snapshots({"a": snap, "b": self._registry(2)})
        assert merged["counters"]["a.cache.hits"] == 1
        assert merged["counters"]["b.cache.hits"] == 2

    def test_collision_rejected(self):
        from repro.analysis.export import merge_snapshots

        with pytest.raises(ConfigError):
            merge_snapshots(
                {
                    "a": {"counters": {"b.cache.hits": 1}},
                    "a.b": {"counters": {"cache.hits": 2}},
                }
            )
        with pytest.raises(ConfigError):
            merge_snapshots({"": self._registry(1)})

    def test_exportable_through_export_metrics(self, tmp_path):
        import json

        from repro.analysis.export import export_metrics, merge_snapshots

        merged = merge_snapshots({"vantage0": self._registry(4)})
        path = export_metrics(tmp_path / "m.json", merged)
        data = json.loads(path.read_text())
        assert data["counters"]["vantage0.cache.hits"] == 4
