"""Scalar vs batched vs runs engines: bit-identical by construction.

The batched eviction pipeline and the run-coalescing kernel must
reproduce the scalar reference path *exactly* under a fixed seed —
same eviction sequence, same counter arrays, same cache statistics,
same generator state, same checkpoint digest — so that engine choice
is purely a performance knob. These tests enforce that contract at
every layer: the cache simulator, CAESAR, CASE, and the chunked RCS
loop, plus hypothesis sweeps over random workloads.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.case import Case, CaseConfig
from repro.baselines.rcs import RCS, RCSConfig
from repro.cachesim import EvictionBuffer, FlowCache
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.split import split_batch, split_value
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import EvictionTrace


def _base_config(**overrides) -> CaesarConfig:
    defaults = dict(
        cache_entries=64,
        entry_capacity=8,
        k=3,
        bank_size=128,
        counter_capacity=2**20 - 1,
        seed=0xBEE,
    )
    defaults.update(overrides)
    return CaesarConfig(**defaults)


ENGINES = ("scalar", "batched", "runs")


def _run_pair(
    config: CaesarConfig,
    packets: np.ndarray,
    lengths: np.ndarray | None = None,
    buffer_capacity: int = 257,
) -> tuple[Caesar, Caesar, Caesar]:
    """Run the same workload through all three engines (small odd buffer
    capacity so chunks straddle process()/finalize() boundaries)."""
    instances = tuple(
        Caesar(
            dataclasses.replace(config, engine=engine),
            buffer_capacity=buffer_capacity,
        )
        for engine in ENGINES
    )
    for instance in instances:
        half = len(packets) // 2
        instance.process(packets[:half], lengths[:half] if lengths is not None else None)
        instance.process(packets[half:], lengths[half:] if lengths is not None else None)
        instance.finalize()
    return instances


def _assert_identical(scalar: Caesar, *others: Caesar) -> None:
    digest = scalar.checkpoint().digest
    for other in others:
        np.testing.assert_array_equal(scalar.counters.values, other.counters.values)
        assert scalar.cache.stats == other.cache.stats
        assert scalar.counters.saturated_mass == other.counters.saturated_mass
        assert scalar._rng.bit_generator.state == other._rng.bit_generator.state
        assert set(scalar.flows_seen().tolist()) == set(other.flows_seen().tolist())
        assert scalar.recorded_mass == other.recorded_mass
        # The digest canonicalizes engine-presentation state (the engine
        # field, the index-memo order), so it must agree across engines.
        assert digest == other.checkpoint().digest


# -- golden equivalence: CAESAR -------------------------------------------------


@pytest.mark.parametrize("replacement", ["lru", "random"])
@pytest.mark.parametrize("remainder", ["random", "even"])
def test_caesar_engines_bit_identical(tiny_trace, replacement, remainder):
    config = _base_config(replacement=replacement, remainder=remainder)
    scalar, batched, runs = _run_pair(config, tiny_trace.packets)
    _assert_identical(scalar, batched, runs)
    ids = tiny_trace.flows.ids
    for method in ("csm", "mlm", "median"):
        expected = scalar.estimate(ids, method)
        np.testing.assert_array_equal(expected, batched.estimate(ids, method))
        np.testing.assert_array_equal(expected, runs.estimate(ids, method))


def test_caesar_engines_identical_on_volume_with_jumbo_weights(tiny_trace):
    """Weighted (byte-counting) streams, including weights at and above
    the per-entry capacity (immediate-overflow path)."""
    rng = np.random.default_rng(99)
    packets = tiny_trace.packets[:4000]
    lengths = rng.integers(1, 40, size=len(packets)).astype(np.int64)
    jumbo = rng.random(len(packets)) < 0.02
    lengths[jumbo] = rng.integers(64, 200, size=int(jumbo.sum()))
    config = _base_config(entry_capacity=50, counter_capacity=2**16 - 1)
    _assert_identical(*_run_pair(config, packets, lengths))


def test_caesar_engines_identical_with_tiny_buffer(tiny_trace):
    """A 1-slot buffer flushes on every eviction — the worst case for
    any chunking assumption."""
    _assert_identical(
        *_run_pair(_base_config(), tiny_trace.packets[:3000], buffer_capacity=1)
    )


def test_caesar_engines_identical_at_unit_entry_capacity(tiny_trace):
    """y = 1 degenerates the cache (every insert overflows outright)."""
    _assert_identical(
        *_run_pair(_base_config(entry_capacity=1), tiny_trace.packets[:3000])
    )


def test_caesar_reset_keeps_engines_aligned(tiny_trace):
    """Epoch reset (dump-and-discard) must leave both engines in the
    same state for the next epoch."""
    packets = tiny_trace.packets
    instances = [
        Caesar(_base_config(engine=engine), buffer_capacity=100)
        for engine in ENGINES
    ]
    for instance in instances:
        instance.process(packets[:3000])
        instance.reset()
        instance.process(packets[3000:6000])
        instance.finalize()
    _assert_identical(*instances)


# -- cache-simulator layer: identical eviction sequences -------------------------


def _collect_sequences(packets, weights, policy, seed, buffer_capacity):
    scalar_cache = FlowCache(num_entries=32, entry_capacity=6, policy=policy, seed=seed)
    scalar_events: list[tuple[int, int, int]] = []

    def sink(flow_id, value, reason):
        scalar_events.append((flow_id, value, reason.code))

    scalar_cache.process(packets, sink, weights=weights)
    scalar_cache.dump(sink)

    batched = []
    for coalesce in (False, True):
        cache = FlowCache(num_entries=32, entry_capacity=6, policy=policy, seed=seed)
        buffer = EvictionBuffer(buffer_capacity)
        events: list[tuple[int, int, int]] = []

        def drain(ids, values, reasons, events=events):
            events.extend(zip(ids.tolist(), values.tolist(), reasons.tolist()))

        cache.process_into(packets, buffer, drain, weights=weights, coalesce=coalesce)
        cache.dump_into(buffer, drain)
        batched.append((events, cache.stats))
    return scalar_events, scalar_cache.stats, batched


@pytest.mark.parametrize("policy", ["lru", "random"])
@pytest.mark.parametrize("weighted", [False, True])
def test_cache_eviction_sequences_identical(policy, weighted):
    rng = np.random.default_rng(17)
    packets = rng.integers(0, 120, size=6000).astype(np.uint64)
    weights = (
        rng.integers(1, 9, size=len(packets)).astype(np.int64) if weighted else None
    )
    s_events, s_stats, batched = _collect_sequences(
        packets, weights, policy, seed=5, buffer_capacity=33
    )
    for events, stats in batched:  # per-packet, then run-coalesced
        assert s_events == events
        assert s_stats == stats


# -- CASE and RCS ---------------------------------------------------------------


def test_case_engines_bit_identical(tiny_trace):
    base = CaseConfig(
        cache_entries=64,
        entry_capacity=8,
        num_counters=256,
        counter_capacity=255,
        max_value=float(tiny_trace.flows.sizes.max()),
        seed=0xCA5E,
    )
    instances = []
    for engine in ENGINES:
        case = Case(dataclasses.replace(base, engine=engine))
        case.process(tiny_trace.packets)
        case.finalize()
        instances.append(case)
    scalar = instances[0]
    ids = tiny_trace.flows.ids
    for other in instances[1:]:
        np.testing.assert_array_equal(scalar.array.values, other.array.values)
        assert scalar.power_operations == other.power_operations
        assert scalar.array.saturated_updates == other.array.saturated_updates
        assert scalar.cache.stats == other.cache.stats
        np.testing.assert_array_equal(scalar.estimate(ids), other.estimate(ids))


def test_rcs_chunk_size_does_not_change_results(tiny_trace):
    config = RCSConfig(k=3, bank_size=64, seed=11)
    whole = RCS(config)
    whole.process(tiny_trace.packets)
    chunked = RCS(config)
    chunked.chunk_size = 997
    chunked.process(tiny_trace.packets)
    np.testing.assert_array_equal(whole.counters.values, chunked.counters.values)
    assert whole._rng.bit_generator.state == chunked._rng.bit_generator.state


# -- splitter: batch == sequential ----------------------------------------------


def test_split_batch_matches_sequential_split_value():
    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(7)
    values = np.array([0, 1, 2, 3, 7, 8, 54, 1000, 5], dtype=np.int64)
    k = 3
    batch = split_batch(values, k, rng_a)
    sequential = np.stack([split_value(int(v), k, rng_b) for v in values])
    np.testing.assert_array_equal(batch, sequential)
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


# -- property-based sweep --------------------------------------------------------


@st.composite
def _workloads(draw):
    num_flows = draw(st.integers(min_value=1, max_value=60))
    num_packets = draw(st.integers(min_value=1, max_value=1500))
    trace_seed = draw(st.integers(min_value=0, max_value=2**16))
    policy = draw(st.sampled_from(["lru", "random"]))
    remainder = draw(st.sampled_from(["random", "even"]))
    k = draw(st.integers(min_value=1, max_value=4))
    entry_capacity = draw(st.integers(min_value=1, max_value=12))
    cache_entries = draw(st.integers(min_value=1, max_value=24))
    weighted = draw(st.booleans())
    buffer_capacity = draw(st.integers(min_value=1, max_value=64))
    # burst_length > 1 repeats each draw, creating the same-flow runs
    # the coalescing kernel exists for (run-weight runs stay uniform on
    # a per-draw basis, so equal-weight *and* mixed runs both occur).
    burst_length = draw(st.sampled_from([1, 1, 2, 5, 16]))
    rng = np.random.default_rng(trace_seed)
    packets = rng.integers(0, num_flows, size=num_packets).astype(np.uint64)
    packets = np.repeat(packets, burst_length)[:num_packets]
    if weighted:
        lengths = rng.integers(1, 3 * entry_capacity, size=num_packets).astype(np.int64)
        if draw(st.booleans()):
            # Per-run-uniform weights: the closed-form cycle path.
            lengths = np.repeat(lengths[:: max(burst_length, 1)], burst_length)[
                :num_packets
            ]
    else:
        lengths = None
    return packets, lengths, policy, remainder, k, entry_capacity, cache_entries, buffer_capacity


@settings(max_examples=40, deadline=None)
@given(_workloads())
def test_engines_identical_on_random_workloads(workload):
    (packets, lengths, policy, remainder, k, entry_capacity,
     cache_entries, buffer_capacity) = workload
    config = CaesarConfig(
        cache_entries=cache_entries,
        entry_capacity=entry_capacity,
        k=k,
        bank_size=32,
        counter_capacity=2**14 - 1,
        replacement=policy,
        remainder=remainder,
        seed=0xF00D,
    )
    _assert_identical(*_run_pair(config, packets, lengths, buffer_capacity=buffer_capacity))


# -- cache statistics: scalar record paths == record_batch ------------------------


@st.composite
def _stat_workloads(draw):
    """Workloads biased toward the accounting-heavy corners: ``jumbo``
    (weights at/above the entry capacity, immediate-overflow path) and
    ``replacement`` (far more flows than cache entries, so replacement
    evictions dominate), plus an unbiased ``mixed`` profile."""
    profile = draw(st.sampled_from(["jumbo", "replacement", "mixed"]))
    trace_seed = draw(st.integers(min_value=0, max_value=2**16))
    policy = draw(st.sampled_from(["lru", "random"]))
    num_packets = draw(st.integers(min_value=1, max_value=1200))
    buffer_capacity = draw(st.integers(min_value=1, max_value=48))
    entry_capacity = draw(st.integers(min_value=1, max_value=10))
    if profile == "replacement":
        cache_entries = draw(st.integers(min_value=1, max_value=4))
        num_flows = draw(st.integers(min_value=20, max_value=120))
    else:
        cache_entries = draw(st.integers(min_value=1, max_value=24))
        num_flows = draw(st.integers(min_value=1, max_value=60))
    rng = np.random.default_rng(trace_seed)
    packets = rng.integers(0, num_flows, size=num_packets).astype(np.uint64)
    if profile == "jumbo":
        weights = rng.integers(
            entry_capacity, 4 * entry_capacity + 1, size=num_packets
        ).astype(np.int64)
    elif draw(st.booleans()):
        weights = rng.integers(1, 2 * entry_capacity, size=num_packets).astype(np.int64)
    else:
        weights = None
    return packets, weights, policy, entry_capacity, cache_entries, buffer_capacity


@settings(max_examples=60, deadline=None)
@given(_stat_workloads())
def test_cache_stats_identical_across_record_paths(workload):
    """The scalar accounting path (per-eviction ``record_eviction`` plus
    per-packet hit/miss bumps) and the batched path (``record_batch``
    over drained chunks) must produce the *same* ``CacheStats`` — every
    field, for every workload shape — and the same eviction-event stream
    up to chunk timing (flow, value, reason; trace ``packet_index`` is
    exact for scalar and chunk-granular for batched, so it is excluded)."""
    packets, weights, policy, entry_capacity, cache_entries, buffer_capacity = workload
    traces = [EvictionTrace(capacity=4 * len(packets) + 8) for _ in range(3)]

    scalar_cache = FlowCache(
        cache_entries, entry_capacity, policy=policy, seed=3, trace=traces[0]
    )
    scalar_cache.process(packets, lambda fid, v, r: None, weights=weights)
    scalar_cache.dump(lambda fid, v, r: None)
    s_events = [(e.flow_id, e.value, e.reason) for e in traces[0].events()]

    for coalesce, trace in zip((False, True), traces[1:]):
        cache = FlowCache(
            cache_entries, entry_capacity, policy=policy, seed=3, trace=trace
        )
        buffer = EvictionBuffer(buffer_capacity)
        cache.process_into(
            packets, buffer, lambda i, v, r: None, weights=weights, coalesce=coalesce
        )
        cache.dump_into(buffer, lambda i, v, r: None)
        assert scalar_cache.stats == cache.stats
        events = [(e.flow_id, e.value, e.reason) for e in trace.events()]
        assert s_events == events
    assert scalar_cache.stats.evicted_packets + scalar_cache.stats.dumped_packets == (
        int(weights.sum()) if weights is not None else len(packets)
    )


# -- observability must not perturb results ---------------------------------------


@pytest.mark.parametrize("engine", list(ENGINES))
def test_metrics_do_not_perturb_results(tiny_trace, engine):
    """Bit-identical counters/stats/RNG state with metrics on or off,
    for both engines — observability is read-only."""
    packets = tiny_trace.packets[:5000]
    instances = []
    for registry in (None, MetricsRegistry()):
        caesar = Caesar(
            _base_config(engine=engine),
            registry=registry,
            eviction_trace=EvictionTrace(capacity=128) if registry else None,
        )
        caesar.process(packets)
        caesar.finalize()
        instances.append(caesar)
    off, on = instances
    _assert_identical(off, on)
    snapshot = on.metrics.snapshot()
    assert snapshot["gauges"]["caesar.cache.accesses"] == len(packets)
    assert all(not section for section in off.metrics.snapshot().values())


def test_metrics_enabled_engines_still_bit_identical(tiny_trace):
    """The acceptance bar: engine parity holds with metrics enabled."""
    packets = tiny_trace.packets[:5000]
    instances = [
        Caesar(
            _base_config(engine=engine),
            registry=MetricsRegistry(),
            buffer_capacity=257,
        )
        for engine in ENGINES
    ]
    for instance in instances:
        instance.process(packets)
        instance.finalize()
    _assert_identical(*instances)
    for caesar in instances:
        gauges = caesar.metrics.snapshot()["gauges"]
        assert gauges["caesar.num_packets"] == len(packets)
        assert gauges["caesar.memory_bits"] == caesar.memory_bits
