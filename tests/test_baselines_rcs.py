"""Unit and behavioural tests for the RCS baseline."""

import numpy as np
import pytest

from repro.analysis.metrics import top_flow_are
from repro.baselines.rcs import RCS, RCSConfig
from repro.errors import ConfigError, QueryError
from repro.traffic.packets import apply_loss


def make_rcs(trace, **overrides):
    defaults = dict(k=3, bank_size=max(64, trace.num_flows // 3), seed=9)
    defaults.update(overrides)
    return RCS(RCSConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RCSConfig(k=0)
        with pytest.raises(ConfigError):
            RCSConfig(bank_size=0)
        with pytest.raises(ConfigError):
            RCSConfig(counter_capacity=0)

    def test_for_budget_fits(self):
        cfg = RCSConfig.for_budget(91.55)
        from repro.sram.layout import sram_kilobytes

        assert sram_kilobytes(cfg.k, cfg.bank_size, cfg.counter_capacity) <= 91.55


class TestConstruction:
    def test_mass_conservation(self, tiny_trace):
        rcs = make_rcs(tiny_trace)
        rcs.process(tiny_trace.packets)
        assert rcs.counters.total_mass == tiny_trace.num_packets
        assert rcs.num_packets == tiny_trace.num_packets

    def test_empty_batch(self, tiny_trace):
        rcs = make_rcs(tiny_trace)
        rcs.process(np.array([], dtype=np.uint64))
        assert rcs.num_packets == 0

    def test_incremental_batches(self, tiny_trace):
        a = make_rcs(tiny_trace)
        a.process(tiny_trace.packets)
        b = make_rcs(tiny_trace)
        half = len(tiny_trace.packets) // 2
        b.process(tiny_trace.packets[:half])
        b.process(tiny_trace.packets[half:])
        assert a.counters.total_mass == b.counters.total_mass

    def test_packets_stay_in_own_vector(self):
        """Every packet of a lone flow must land in one of its k counters."""
        packets = np.full(500, 7, dtype=np.uint64)
        rcs = RCS(RCSConfig(k=3, bank_size=100, seed=1))
        rcs.process(packets)
        w = rcs.counter_values(np.array([7], dtype=np.uint64))
        assert w.sum() == 500
        assert rcs.counters.total_mass == 500

    def test_per_packet_scatter_spreads(self):
        packets = np.full(3000, 7, dtype=np.uint64)
        rcs = RCS(RCSConfig(k=3, bank_size=100, seed=1))
        rcs.process(packets)
        w = rcs.counter_values(np.array([7], dtype=np.uint64))[0]
        # Each counter ~ Binomial(3000, 1/3): all far from 0 and from 3000.
        assert w.min() > 800 and w.max() < 1200


class TestEstimation:
    def test_csm_lossless_accurate_on_elephants(self, small_trace):
        rcs = make_rcs(small_trace)
        rcs.process(small_trace.packets)
        est = rcs.estimate(small_trace.flows.ids, "csm")
        assert top_flow_are(est, small_trace.flows.sizes, top=20) < 0.35

    def test_mlm_lossless_accurate_on_elephants(self, small_trace):
        rcs = make_rcs(small_trace)
        rcs.process(small_trace.packets)
        est = rcs.estimate(small_trace.flows.ids, "mlm")
        assert top_flow_are(est, small_trace.flows.sizes, top=20) < 0.35

    def test_mlm_nonnegative(self, small_trace):
        rcs = make_rcs(small_trace)
        rcs.process(small_trace.packets)
        est = rcs.estimate(small_trace.flows.ids, "mlm")
        assert (est >= 0).all()

    def test_mlm_requires_k2(self, tiny_trace):
        rcs = make_rcs(tiny_trace, k=1)
        rcs.process(tiny_trace.packets)
        with pytest.raises(QueryError):
            rcs.estimate(tiny_trace.flows.ids, "mlm")

    def test_unknown_method(self, tiny_trace):
        rcs = make_rcs(tiny_trace)
        rcs.process(tiny_trace.packets)
        with pytest.raises(ConfigError):
            rcs.estimate(tiny_trace.flows.ids, "map")

    def test_lossy_estimates_scale_with_kept_fraction(self, small_trace):
        """Figure 7's mechanism: under loss rho the elephants are
        under-counted by exactly rho on average."""
        for rho in (2 / 3, 9 / 10):
            rcs = make_rcs(small_trace)
            rcs.process(apply_loss(small_trace.packets, rho, seed=11))
            est = rcs.estimate(small_trace.flows.ids, "csm")
            are = top_flow_are(est, small_trace.flows.sizes, top=20)
            assert are == pytest.approx(rho, abs=0.07)
