"""Seed-sweep statistical validation of the estimators.

Runs the same workload through independently-seeded CAESAR instances
and checks the *distributional* claims: unbiasedness across seeds,
spread consistent with the mechanism-true variance, and estimator
determinism within a seed. Slower than unit tests (multiple full
simulations) but still seconds at the tiny-trace size.
"""

import numpy as np
import pytest

from repro.core import theory
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.traffic.distributions import EmpiricalDist


def run_once(trace, seed, bank=256):
    caesar = Caesar(
        CaesarConfig(
            cache_entries=64, entry_capacity=16, k=3, bank_size=bank, seed=seed
        )
    )
    caesar.process(trace.packets)
    caesar.finalize()
    return caesar.estimate(trace.flows.ids, "csm", clip_negative=False)


NUM_SEEDS = 12


class TestAcrossSeeds:
    @pytest.fixture(scope="class")
    def estimates(self, tiny_trace):
        return np.stack([run_once(tiny_trace, seed) for seed in range(NUM_SEEDS)])

    def test_unbiased_across_seeds(self, tiny_trace, estimates):
        """Per-flow mean over independent hash seeds approaches truth."""
        mean_est = estimates.mean(axis=0)
        resid = mean_est - tiny_trace.flows.sizes
        per_seed_std = estimates.std(axis=0).mean()
        # The mean of NUM_SEEDS independent runs shrinks the noise ~3.5x.
        assert abs(resid.mean()) < per_seed_std

    def test_spread_matches_mechanism_variance(self, tiny_trace, estimates):
        """Across-seed variance of the estimates ~ the mechanism-true
        CSM variance (thinning + clustering), not the paper's Eq. 22."""
        dist = EmpiricalDist(tiny_trace.flows.sizes)
        predicted = theory.csm_variance_mechanism(
            k=3,
            bank_size=256,
            num_packets=tiny_trace.num_packets,
            second_moment_total=dist.second_moment * tiny_trace.num_flows,
        )
        measured = float(estimates.var(axis=0).mean())
        assert measured == pytest.approx(predicted, rel=0.5)

    def test_elephants_stable_across_seeds(self, tiny_trace, estimates):
        top = np.argsort(tiny_trace.flows.sizes)[-5:]
        rel_spread = estimates[:, top].std(axis=0) / tiny_trace.flows.sizes[top]
        assert rel_spread.max() < 0.5

    def test_seeds_actually_differ(self, estimates):
        assert not np.array_equal(estimates[0], estimates[1])


class TestVarianceScalesWithMemory:
    def test_variance_inversely_proportional_to_bank(self, tiny_trace):
        """Mechanism variance ~ 1/L: quadrupling the bank should cut
        the across-seed estimator variance ~4x."""
        var_small = np.stack(
            [run_once(tiny_trace, s, bank=128) for s in range(8)]
        ).var(axis=0).mean()
        var_big = np.stack(
            [run_once(tiny_trace, s, bank=512) for s in range(8)]
        ).var(axis=0).mean()
        ratio = var_small / var_big
        assert 2.0 < ratio < 8.0  # ~4 with heavy-tail sampling noise


class TestMlmVsCsmEmpirical:
    def test_both_methods_consistent_on_elephants(self, tiny_trace):
        ests = {"csm": [], "mlm": []}
        top = np.argsort(tiny_trace.flows.sizes)[-5:]
        truth = tiny_trace.flows.sizes[top]
        for seed in range(6):
            caesar = Caesar(
                CaesarConfig(
                    cache_entries=64, entry_capacity=16, k=3, bank_size=512, seed=seed
                )
            )
            caesar.process(tiny_trace.packets)
            caesar.finalize()
            for m in ests:
                ests[m].append(caesar.estimate(tiny_trace.flows.ids, m)[top])
        for m, values in ests.items():
            rel = np.abs(np.stack(values).mean(axis=0) - truth) / truth
            assert rel.max() < 0.35, m
