"""Tests for the memory planner and the one-call API."""

import numpy as np
import pytest

import repro
from repro.analysis.metrics import ci_coverage
from repro.core.planner import plan
from repro.errors import ConfigError
from repro.traffic.distributions import EmpiricalDist


class TestPlanner:
    def test_plan_meets_target_on_synthetic_trace(self, small_trace):
        size = int(np.percentile(small_trace.flows.sizes, 99.5))
        p = plan(
            num_packets=small_trace.num_packets,
            num_flows=small_trace.num_flows,
            target_rel_error=0.15,
            size_of_interest=size,
            distribution=EmpiricalDist(small_trace.flows.sizes),
        )
        caesar = repro.Caesar(p.config)
        caesar.process(small_trace.packets)
        caesar.finalize()
        est = caesar.estimate(small_trace.flows.ids)
        near = (small_trace.flows.sizes > size * 0.5) & (
            small_trace.flows.sizes < size * 2
        )
        rel = np.abs(est[near] - small_trace.flows.sizes[near]) / small_trace.flows.sizes[near]
        # One-sigma target: the mean |rel| of a half-normal is
        # sigma*sqrt(2/pi) ~ 0.8 sigma; allow slack for model error.
        assert rel.mean() < 2.0 * p.target_rel_error

    def test_tighter_target_needs_more_memory(self):
        kwargs = dict(
            num_packets=1_000_000, num_flows=40_000, size_of_interest=500
        )
        loose = plan(target_rel_error=0.5, **kwargs)
        tight = plan(target_rel_error=0.05, **kwargs)
        assert tight.config.bank_size > loose.config.bank_size
        assert tight.sram_kilobytes > loose.sram_kilobytes
        # L scales as 1/target^2.
        assert tight.config.bank_size == pytest.approx(
            loose.config.bank_size * 100, rel=0.01
        )

    def test_predicted_error_at_most_target(self):
        p = plan(
            num_packets=1_000_000,
            num_flows=40_000,
            target_rel_error=0.2,
            size_of_interest=300,
        )
        assert p.predicted_rel_error <= 0.2 + 1e-9
        assert "target 20%" in p.describe()

    def test_counter_capacity_covers_elephants(self, small_trace):
        dist = EmpiricalDist(small_trace.flows.sizes)
        p = plan(
            num_packets=small_trace.num_packets,
            num_flows=small_trace.num_flows,
            target_rel_error=0.3,
            size_of_interest=200,
            distribution=dist,
        )
        assert p.config.counter_capacity > dist.max_size / p.config.k

    def test_validation(self):
        with pytest.raises(ConfigError):
            plan(num_packets=0, num_flows=1, target_rel_error=0.1, size_of_interest=10)
        with pytest.raises(ConfigError):
            plan(
                num_packets=100, num_flows=10, target_rel_error=0.0, size_of_interest=10
            )
        with pytest.raises(ConfigError):
            plan(
                num_packets=100, num_flows=10, target_rel_error=0.1, size_of_interest=0
            )
        with pytest.raises(ConfigError):
            # mean size <= 1 packet: nothing to cache.
            plan(
                num_packets=10, num_flows=10, target_rel_error=0.1, size_of_interest=5
            )


class TestMeasureApi:
    def test_budget_mode(self, small_trace):
        result = repro.measure(
            small_trace.packets, sram_kb=8.0, cache_kb=2.0
        )
        assert result.num_packets == small_trace.num_packets
        assert result.num_flows_seen == small_trace.num_flows
        est = result.estimate(small_trace.flows.ids)
        assert (est >= 0).all()

    def test_target_mode(self, small_trace):
        result = repro.measure(
            small_trace.packets,
            target_rel_error=0.2,
            size_of_interest=int(np.percentile(small_trace.flows.sizes, 99.5)),
        )
        top = small_trace.flows.top(10)
        est = result.estimate(top.ids)
        rel = np.abs(est - top.sizes) / top.sizes
        assert rel.mean() < 0.4

    def test_top_flows(self, small_trace):
        result = repro.measure(small_trace.packets, sram_kb=16.0, cache_kb=2.0)
        top = result.top_flows(5)
        assert len(top) == 5
        true_top = set(small_trace.flows.top(20).ids.tolist())
        hits = sum(1 for fid, _ in top if fid in true_top)
        assert hits >= 3

    def test_empirical_ci_covers(self, small_trace):
        result = repro.measure(small_trace.packets, sram_kb=8.0, cache_kb=2.0)
        lo, hi = result.confidence_interval(small_trace.flows.ids, alpha=0.95)
        assert ci_coverage(lo, hi, small_trace.flows.sizes) > 0.85

    def test_volume_mode(self, tiny_trace):
        from repro.traffic.lengths import constant_lengths

        lengths = constant_lengths(tiny_trace.num_packets, 100)
        result = repro.measure(
            tiny_trace.packets, sram_kb=8.0, cache_kb=2.0, lengths=lengths
        )
        assert result.caesar.recorded_mass == 100 * tiny_trace.num_packets

    def test_validation(self, tiny_trace):
        with pytest.raises(ConfigError):
            repro.measure(np.array([], dtype=np.uint64), sram_kb=1, cache_kb=1)
        with pytest.raises(ConfigError):
            repro.measure(tiny_trace.packets)  # no budgets, no target
        with pytest.raises(ConfigError):
            repro.measure(tiny_trace.packets, target_rel_error=0.1)  # no size
