"""Golden seed-stability tests for the versioned shard map.

The live-reshard contract reduces every resharded run to one offline
anchor: a ``ShardedCaesar`` built with the final :class:`ShardMap`
(tests/test_reshard.py proves runtime == anchor bit for bit). These
goldens pin the *anchor itself* — the split hash bit, the owner
assignment under a scripted split chain, the per-shard checkpoint
digests, and a sample of estimates — so any drift in the hash family,
the split-member derivation, or the shard-config seed stride shows up
here as a mismatch against checked-in values before it can silently
re-home every resharded deployment.

Regenerate after an *intentional* numerical change with::

    PYTHONPATH=src python tests/test_golden_reshard.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.runtime import ShardMap

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_reshard.json"

#: Workload + configuration the goldens were generated under. Fixed
#: literals on purpose (see test_golden_estimators.py).
STREAM_SEED = 11
STREAM_PACKETS = 12_000
STREAM_FLOW_SPACE = 2048
NUM_BASE = 2
SPLIT_DONORS = (1, 1)  # split shard 1, then split the heir again
CONFIG = dict(
    cache_entries=64,
    entry_capacity=16,
    k=3,
    bank_size=512,
    counter_capacity=2**20 - 1,
    seed=5,
    engine="batched",
)


def _stream() -> np.ndarray:
    rng = np.random.default_rng(STREAM_SEED)
    return rng.zipf(1.25, STREAM_PACKETS).astype(np.uint64) % STREAM_FLOW_SPACE


def _final_map() -> ShardMap:
    shard_map = ShardMap(num_base=NUM_BASE)
    for donor in SPLIT_DONORS:
        shard_map = shard_map.split(donor)
    return shard_map


def _compute() -> dict:
    stream = _stream()
    shard_map = _final_map()
    scheme = ShardedCaesar(CaesarConfig(**CONFIG), shard_map=shard_map)
    scheme.process(stream)
    scheme.finalize()

    # Deterministic probe: the 12 most frequent flows (stressing the
    # shared counters) plus the 4 rarest seen (stressing the noise
    # subtraction), stable under the fixed stream seed.
    ids, counts = np.unique(stream, return_counts=True)
    order = np.argsort(counts, kind="stable")
    probe = ids[np.concatenate([order[-12:], order[:4]])]

    return {
        "stream": {
            "seed": STREAM_SEED,
            "packets": STREAM_PACKETS,
            "flow_space": STREAM_FLOW_SPACE,
        },
        "config": dict(CONFIG),
        "map": {
            "num_base": NUM_BASE,
            "donors": list(SPLIT_DONORS),
            "describe": shard_map.describe(),
        },
        "probe_flow_ids": [int(f) for f in probe],
        # The split hash bit, pinned: which shard owns each probe flow
        # at every map version along the scripted chain.
        "owners_v0": [int(o) for o in ShardMap(num_base=NUM_BASE).owner_of(probe)],
        "owners_final": [int(o) for o in shard_map.owner_of(probe)],
        "shard_packets": [
            int(n)
            for n in np.bincount(
                shard_map.owner_of(stream), minlength=shard_map.num_shards
            )
        ],
        "shard_digests": [s.checkpoint().digest for s in scheme.shards],
        "csm": scheme.estimate(probe, "csm", clip_negative=True).tolist(),
    }


def test_resharded_anchor_matches_goldens():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _compute()
    assert current["stream"] == golden["stream"], "workload drifted"
    assert current["map"] == golden["map"], "split chain drifted"
    assert current["probe_flow_ids"] == golden["probe_flow_ids"], (
        "probe set drifted"
    )
    assert current["owners_v0"] == golden["owners_v0"], (
        "base RSS owner assignment drifted"
    )
    assert current["owners_final"] == golden["owners_final"], (
        "split owner assignment drifted (split hash bit moved)"
    )
    assert current["shard_packets"] == golden["shard_packets"], (
        "per-shard substream sizes drifted"
    )
    assert current["shard_digests"] == golden["shard_digests"], (
        "per-shard checkpoint digests drifted"
    )
    np.testing.assert_allclose(
        current["csm"], golden["csm"], rtol=1e-9, atol=0.0,
        err_msg="resharded CSM estimates drifted from golden values",
    )


def test_goldens_are_sane():
    """The checked-in numbers must describe a real split: all four
    shards own packets, the refinement moved donor flows only, and the
    digests are distinct non-empty hashes."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert len(golden["shard_packets"]) == NUM_BASE + len(SPLIT_DONORS)
    assert all(n > 0 for n in golden["shard_packets"])
    assert sum(golden["shard_packets"]) == STREAM_PACKETS
    v0 = np.array(golden["owners_v0"])
    final = np.array(golden["owners_final"])
    # Shard 0 was never split: its probe flows must not have moved.
    assert np.all(final[v0 == 0] == 0)
    # Shard 1's flows may only have landed on 1 or the successors.
    assert np.all(np.isin(final[v0 == 1], [1, 2, 3]))
    digests = golden["shard_digests"]
    assert len(set(digests)) == len(digests)
    assert all(isinstance(d, str) and len(d) >= 32 for d in digests)


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to rewrite the golden file")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_compute(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
