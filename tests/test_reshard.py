"""Elastic resharding tests: map properties, planner, live splits, chaos.

Three layers, mirroring the resharding design (docs/runtime.md):

- **property tests** (hypothesis) over the versioned :class:`ShardMap` —
  splitting shard ``s`` remaps only flows hashed to ``s``; owner
  assignment depends only on the final split chain (associative
  composition); the ``v+1`` partition of any stream is a refinement of
  the ``v`` partition;
- **planner units** — sustained-fill detection, cooldown, max-shards;
- **live split integration + chaos matrix** — a runtime resharded
  mid-stream, with workers SIGKILLed at each reshard phase boundary,
  must drain bit-identical (estimates *and* per-shard digests) to a
  single-process ``ShardedCaesar`` built with the final map, on both
  transports — while the other shards keep ingesting throughout.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError, IngestError
from repro.obs.registry import MetricsRegistry
from repro.runtime import ShardMap, ShardSplit, StreamPartitioner
from repro.runtime.client import StreamingRuntime
from repro.runtime.planner import ReshardPlanner
from tests.conftest import wait_until
from tests.test_runtime import TRANSPORTS, make_config

# -- strategies ---------------------------------------------------------------

flow_arrays = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=200
).map(lambda xs: np.array(xs, dtype=np.uint64))


@st.composite
def maps_with_donor(draw):
    """A (possibly already split) map plus a valid donor to split next."""
    num_base = draw(st.integers(min_value=1, max_value=6))
    m = ShardMap(num_base=num_base)
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        m = m.split(draw(st.integers(min_value=0, max_value=m.num_shards - 1)))
    donor = draw(st.integers(min_value=0, max_value=m.num_shards - 1))
    return m, donor


# -- ShardMap properties ------------------------------------------------------


class TestShardMapProperties:
    @settings(max_examples=100, deadline=None)
    @given(maps_with_donor(), flow_arrays)
    def test_split_remaps_only_donor_flows(self, map_donor, ids):
        """Refinement: v+1 owners equal v owners except the donor's
        flows, which land on the donor or its new child only."""
        m, donor = map_donor
        m2 = m.split(donor)
        before = m.owner_of(ids)
        after = m2.owner_of(ids)
        child = m2.num_shards - 1
        moved = before != after
        assert np.all(before[moved] == donor)
        assert np.all(after[moved] == child)
        donor_flows = before == donor
        assert np.all(np.isin(after[donor_flows], [donor, child]))
        assert np.all(after[~donor_flows] == before[~donor_flows])

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(st.integers(min_value=0, max_value=100), max_size=4),
        flow_arrays,
    )
    def test_composition_is_associative(self, num_base, donor_picks, ids):
        """Owners depend only on the ordered split chain, never on how
        it was built: splitting step by step equals constructing the
        whole chain at once."""
        stepwise = ShardMap(num_base=num_base)
        splits = []
        for pick in donor_picks:
            donor = pick % stepwise.num_shards
            splits.append(ShardSplit(donor=donor, child=stepwise.num_shards))
            stepwise = stepwise.split(donor)
        at_once = ShardMap(num_base=num_base, splits=tuple(splits))
        assert stepwise == at_once
        np.testing.assert_array_equal(
            stepwise.owner_of(ids), at_once.owner_of(ids)
        )

    @settings(max_examples=60, deadline=None)
    @given(maps_with_donor(), flow_arrays)
    def test_partition_is_refined_stream_by_stream(self, map_donor, ids):
        """StreamPartitioner under v+1 refines the v partition: every
        non-donor substream is unchanged, and the donor's substream is
        exactly the order-preserving interleave of its two successors'
        substreams."""
        m, donor = map_donor
        p1 = StreamPartitioner(shard_map=m)
        p2 = p1.split(donor)
        child = p2.num_shards - 1
        parts1 = p1.partition(ids)
        parts2 = p2.partition(ids)
        for s in range(p1.num_shards):
            if s == donor:
                continue
            np.testing.assert_array_equal(parts1[s][0], parts2[s][0])
        donor_stream = parts1[donor][0]
        successors = p2.shard_of(donor_stream)
        np.testing.assert_array_equal(
            donor_stream[successors == donor], parts2[donor][0]
        )
        np.testing.assert_array_equal(
            donor_stream[successors == child], parts2[child][0]
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=8), flow_arrays)
    def test_v0_matches_historical_partitioner(self, num_shards, ids):
        """A map with no splits is bit-identical to the pre-reshard
        partitioner (growing the hash family never moves member 0)."""
        np.testing.assert_array_equal(
            ShardMap(num_base=num_shards).owner_of(ids),
            StreamPartitioner(num_shards).shard_of(ids),
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardMap(num_base=0)
        with pytest.raises(ConfigError):
            ShardMap(num_base=2, splits=(ShardSplit(donor=5, child=2),))
        with pytest.raises(ConfigError):
            ShardMap(num_base=2, splits=(ShardSplit(donor=0, child=7),))
        with pytest.raises(ConfigError):
            ShardMap(num_base=2).split(2)
        m = ShardMap(num_base=2).split(1).split(2)
        assert m.version == 2
        assert m.num_shards == 4
        assert "1->1+2" in m.describe()

    def test_partitioner_rejects_count_map_mismatch(self):
        with pytest.raises(ConfigError):
            StreamPartitioner(3, shard_map=ShardMap(num_base=2))


# -- planner ------------------------------------------------------------------


class TestReshardPlanner:
    def test_flags_only_sustained_hot_shard(self):
        p = ReshardPlanner(threshold=0.8, sustain=3)
        assert p.observe({0: 0.9, 1: 0.2}) is None
        assert p.observe({0: 0.9, 1: 0.2}) is None
        assert p.observe({0: 0.95, 1: 0.2}) == 0

    def test_streak_resets_on_cool_observation(self):
        p = ReshardPlanner(threshold=0.8, sustain=2)
        assert p.observe({0: 0.9}) is None
        assert p.observe({0: 0.1}) is None  # streak broken
        assert p.observe({0: 0.9}) is None
        assert p.observe({0: 0.9}) == 0

    def test_ties_break_to_fullest_then_lowest_id(self):
        p = ReshardPlanner(threshold=0.5, sustain=1)
        assert p.observe({0: 0.6, 1: 0.9, 2: 0.6}) == 1
        assert p.observe({0: 0.7, 1: 0.7}) == 0

    def test_cooldown_suppresses_back_to_back_splits(self):
        p = ReshardPlanner(threshold=0.5, sustain=1, cooldown=2)
        assert p.observe({0: 0.9}) == 0
        assert p.observe({0: 0.9}) is None
        assert p.observe({0: 0.9}) is None
        assert p.observe({0: 0.9}) == 0

    def test_max_shards_caps_growth(self):
        p = ReshardPlanner(threshold=0.5, sustain=1, max_shards=2)
        assert p.observe({0: 0.9, 1: 0.9}) is None

    def test_decision_clears_all_streaks(self):
        p = ReshardPlanner(threshold=0.5, sustain=2)
        p.observe({0: 0.9, 1: 0.9})
        assert p.observe({0: 0.9, 1: 0.9}) == 0
        assert p.observe({0: 0.9, 1: 0.9}) is None  # everyone re-earns

    def test_rejects_bad_parameters(self):
        for kwargs in (
            {"threshold": 0.0},
            {"threshold": 1.5},
            {"threshold": 0.5, "sustain": 0},
            {"threshold": 0.5, "cooldown": -1},
            {"threshold": 0.5, "max_shards": 0},
        ):
            with pytest.raises(ConfigError):
                ReshardPlanner(**kwargs)


# -- live split integration ---------------------------------------------------


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(11)
    return rng.zipf(1.25, 12_000).astype(np.uint64) % 2048


@pytest.fixture(scope="module")
def flows(stream):
    return np.unique(stream)


def offline_with_map(config, shard_map, packets):
    base = ShardedCaesar(config, shard_map=shard_map)
    base.process(packets)
    base.finalize()
    return base


def assert_matches_offline_map(result, runtime, config, stream, flows):
    """Bit-identity of a (possibly resharded) runtime against the
    offline ShardedCaesar built with the runtime's final map."""
    base = offline_with_map(config, result.shard_map, stream)
    base_digests = tuple(s.checkpoint().digest for s in base.shards)
    assert result.shard_digests == base_digests
    np.testing.assert_array_equal(
        runtime.query(flows), base.estimate(flows, "csm", clip_negative=True)
    )
    twin = result.load_scheme()
    np.testing.assert_array_equal(
        twin.estimate(flows, "csm", clip_negative=True),
        base.estimate(flows, "csm", clip_negative=True),
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestLiveReshard:
    def test_split_mid_stream_matches_offline_final_map(
        self, tmp_path, stream, flows, transport
    ):
        config = make_config()
        chunks = np.array_split(stream, 12)
        with StreamingRuntime(
            config, 2, state_dir=tmp_path, transport=transport
        ) as rt:
            for i, chunk in enumerate(chunks):
                if i == 5:
                    rt.begin_reshard(1)
                rt.ingest(chunk)
            result = rt.drain()
            assert result.reshards == 1
            assert result.num_shards == 3
            assert result.shard_map.splits == (ShardSplit(donor=1, child=2),)
            assert_matches_offline_map(result, rt, config, stream, flows)

    def test_other_shards_keep_ingesting_during_split(
        self, tmp_path, stream, flows, transport
    ):
        """The headline liveness property: while the donor is sealing
        (here: frozen under SIGSTOP, so the phase provably cannot
        advance), chunks keep flowing to every other shard — asserted
        via the per-shard chunks_sent counters."""
        config = make_config()
        registry = MetricsRegistry()
        chunks = np.array_split(stream, 12)
        donor = 1
        with StreamingRuntime(
            config, 3, state_dir=tmp_path, transport=transport, registry=registry
        ) as rt:
            for chunk in chunks[:4]:
                rt.ingest(chunk)
            rt.kill_worker(donor, signal.SIGSTOP)
            rt.begin_reshard(donor)
            others = [s for s in range(3) if s != donor]
            before = {
                s: registry.counter(f"runtime.shard{s}.chunks_sent").value
                for s in others
            }
            for chunk in chunks[4:8]:
                rt.ingest(chunk)
            # The donor is frozen: the seal cannot be processed, so the
            # split is provably still in progress while the others ate.
            assert rt.reshard_in_progress
            assert rt.supervisor.reshard_phase == "sealing"
            for s in others:
                after = registry.counter(f"runtime.shard{s}.chunks_sent").value
                assert after > before[s], f"shard {s} stalled during reshard"
            assert registry.counter("runtime.reshard.held_chunks").value > 0
            rt.kill_worker(donor, signal.SIGCONT)
            for chunk in chunks[8:]:
                rt.ingest(chunk)
            result = rt.drain()
            assert not rt.reshard_in_progress
            assert result.reshards == 1
            assert_matches_offline_map(result, rt, config, stream, flows)

    @pytest.mark.slow
    def test_recursive_splits(self, tmp_path, stream, flows, transport):
        """Split, then split a successor: the WAL history chain is two
        deep and the map two versions in."""
        config = make_config()
        chunks = np.array_split(stream, 16)
        with StreamingRuntime(
            config, 2, state_dir=tmp_path, transport=transport
        ) as rt:
            for i, chunk in enumerate(chunks):
                if i == 4:
                    rt.begin_reshard(1)
                if i == 10:
                    rt.finish_reshard()
                    rt.begin_reshard(1)  # split the heir again
                rt.ingest(chunk)
            result = rt.drain()
            assert result.reshards == 2
            assert result.num_shards == 4
            assert_matches_offline_map(result, rt, config, stream, flows)

    def test_queries_answered_across_the_split(
        self, tmp_path, stream, flows, transport
    ):
        config = make_config()
        chunks = np.array_split(stream, 12)
        watch = flows[:16]
        with StreamingRuntime(
            config, 2, state_dir=tmp_path, transport=transport
        ) as rt:
            for i, chunk in enumerate(chunks):
                if i == 5:
                    rt.begin_reshard(0)
                rt.ingest(chunk)
                assert rt.query(watch).shape == watch.shape
            result = rt.drain()
            assert_matches_offline_map(result, rt, config, stream, flows)

    def test_second_reshard_while_in_progress_raises(
        self, tmp_path, stream, transport
    ):
        with StreamingRuntime(
            make_config(), 2, state_dir=tmp_path, transport=transport
        ) as rt:
            rt.ingest(stream[:2000])
            rt.kill_worker(0, signal.SIGSTOP)
            try:
                rt.begin_reshard(0)
                with pytest.raises(IngestError, match="in progress"):
                    rt.begin_reshard(1)
            finally:
                rt.kill_worker(0, signal.SIGCONT)
            rt.finish_reshard()
            rt.drain()


def test_planner_triggers_live_split(tmp_path, stream, flows):
    """Hot-shard detection end to end: freeze both workers so the fills
    climb chunk-exactly in lockstep, let the planner watch the sustained
    fill, and require that the triggered split (a) names the shard the
    tie-break rule promises (equal fills -> lowest id) and (b) still
    drains bit-identical. Queue transport: its fill fraction is
    chunk-exact, so the trigger point is deterministic."""
    config = make_config()
    chunks = np.array_split(stream, 24)
    with StreamingRuntime(
        config,
        2,
        state_dir=tmp_path,
        transport="queue",
        queue_depth=12,
        reshard_above=0.5,
        reshard_sustain=3,
        max_shards=3,
    ) as rt:
        rt.kill_worker(0, signal.SIGSTOP)
        rt.kill_worker(1, signal.SIGSTOP)
        fed = 0
        for chunk in chunks:
            rt.ingest(chunk)
            fed += 1
            if rt.reshard_in_progress:
                break
        assert rt.reshard_in_progress, "planner never triggered"
        assert fed < len(chunks)
        assert rt.supervisor._reshard.donor == 0
        rt.kill_worker(0, signal.SIGCONT)
        rt.kill_worker(1, signal.SIGCONT)
        for chunk in chunks[fed:]:
            rt.ingest(chunk)
        result = rt.drain()
        assert result.reshards == 1
        assert result.shard_map.splits[0].donor == 0
        assert_matches_offline_map(result, rt, config, stream, flows)


# -- chaos matrix -------------------------------------------------------------


def _phase_is(rt, phase):
    def check() -> bool:
        rt.supervisor.pump()
        return rt.supervisor.reshard_phase == phase

    return check


def _run_reshard_chaos(tmp_path, stream, flows, transport, kill_point):
    """Drive a scripted split and SIGKILL one process at ``kill_point``;
    the run must still drain bit-identical to the offline final map."""
    config = make_config()
    registry = MetricsRegistry()
    chunks = np.array_split(stream, 12)
    donor = 1
    with StreamingRuntime(
        config, 2, state_dir=tmp_path, transport=transport, registry=registry
    ) as rt:
        for chunk in chunks[:4]:
            rt.ingest(chunk)

        if kill_point == "donor_sealing":
            # Freeze the donor so the seal provably cannot be processed,
            # then SIGKILL it mid-seal: the restart re-feeds and re-seals.
            rt.kill_worker(donor, signal.SIGSTOP)
            rt.begin_reshard(donor)
            rt.ingest(chunks[4])
            assert rt.supervisor.reshard_phase == "sealing"
            rt.kill_worker(donor, signal.SIGKILL)
        else:
            rt.begin_reshard(donor)
            rt.ingest(chunks[4])

        if kill_point == "donor_replaying":
            wait_until(_phase_is(rt, "replaying"), desc="replaying phase")
            # The donor sealed and the successors are booting; the donor
            # (still serving queries) dies and must recover to its
            # sealed state without disturbing the split.
            rt.kill_worker(donor, signal.SIGKILL)
        elif kill_point == "successor_replaying":
            wait_until(_phase_is(rt, "replaying"), desc="replaying phase")
            op = rt.supervisor._reshard
            for successor in op.successors:
                os.kill(successor.process.pid, signal.SIGKILL)
        elif kill_point in ("heir_refeed", "child_refeed"):
            # pump() alone performs the cutover but never flushes the
            # refeed backlog, so the refeed phase is stable to observe.
            wait_until(_phase_is(rt, "refeed"), desc="refeed phase")
            target = donor if kill_point == "heir_refeed" else 2
            rt.kill_worker(target, signal.SIGKILL)

        for chunk in chunks[5:]:
            rt.ingest(chunk)
        result = rt.drain()
        assert result.reshards == 1
        assert result.num_shards == 3
        # RuntimeResult.restarts only counts handles alive at drain (the
        # donor's tally dies with its handle at cutover) — the registry
        # counter sees every restart regardless of who got swapped out.
        assert registry.counter("runtime.restarts").value >= 1
        assert_matches_offline_map(result, rt, config, stream, flows)


CHAOS_MATRIX = [
    pytest.param("queue", "donor_sealing", id="queue-donor_sealing"),
    pytest.param("queue", "donor_replaying", id="queue-donor_replaying"),
    pytest.param("queue", "successor_replaying", id="queue-successor_replaying"),
    pytest.param("queue", "heir_refeed", id="queue-heir_refeed"),
    pytest.param(
        "queue", "child_refeed", id="queue-child_refeed", marks=pytest.mark.slow
    ),
    pytest.param("shm", "donor_sealing", id="shm-donor_sealing"),
    pytest.param(
        "shm",
        "donor_replaying",
        id="shm-donor_replaying",
        marks=pytest.mark.slow,
    ),
    pytest.param("shm", "successor_replaying", id="shm-successor_replaying"),
    pytest.param(
        "shm", "heir_refeed", id="shm-heir_refeed", marks=pytest.mark.slow
    ),
    pytest.param("shm", "child_refeed", id="shm-child_refeed"),
]


@pytest.mark.parametrize(("transport", "kill_point"), CHAOS_MATRIX)
def test_reshard_chaos(tmp_path, stream, flows, transport, kill_point):
    _run_reshard_chaos(tmp_path, stream, flows, transport, kill_point)
