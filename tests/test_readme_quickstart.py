"""Executes the README's quickstart code block verbatim.

Documentation rot is a bug: if the quickstart stops running, this test
fails. The block is extracted from README.md (first ```python fence)
and executed in a throwaway namespace at a tiny scale override.
"""

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"


def extract_first_python_block(text: str) -> str:
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README has no python code block"
    return match.group(1)


def test_readme_quickstart_runs():
    code = extract_first_python_block(README.read_text())
    # Shrink the workload so the doc test stays fast.
    code = code.replace("scale=0.02", "scale=0.004")
    namespace: dict = {}
    exec(compile(code, "README.md#quickstart", "exec"), namespace)  # noqa: S102
    # The block must actually have produced estimates and intervals.
    import numpy as np

    assert isinstance(namespace["est"], np.ndarray)
    assert isinstance(namespace["est_mlm"], np.ndarray)
    lo, hi = namespace["lo"], namespace["hi"]
    assert (lo <= hi).all()
    assert namespace["trace"].num_flows == len(namespace["est"])


def test_readme_mentions_all_deliverables():
    text = README.read_text()
    for anchor in ("DESIGN.md", "EXPERIMENTS.md", "REPORT.md", "examples/", "benchmarks/"):
        assert anchor in text
