"""Unit tests for hash families and the banked indexer."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hashing.family import BankedIndexer, HashFamily


class TestHashFamily:
    def test_rejects_bad_k(self):
        with pytest.raises(ConfigError):
            HashFamily(0)

    def test_functions_are_distinct(self):
        fam = HashFamily(4, seed=1)
        outs = {fam.hash_one(r, 42) for r in range(4)}
        assert len(outs) == 4

    def test_deterministic_across_instances(self):
        a = HashFamily(3, seed=9)
        b = HashFamily(3, seed=9)
        assert [a.hash_one(r, 5) for r in range(3)] == [b.hash_one(r, 5) for r in range(3)]

    def test_seed_changes_family(self):
        a = HashFamily(3, seed=1)
        b = HashFamily(3, seed=2)
        assert a.hash_one(0, 5) != b.hash_one(0, 5)

    def test_hash_array_matches_scalar(self):
        fam = HashFamily(3, seed=11)
        xs = np.array([1, 2, 2**63], dtype=np.uint64)
        for r in range(3):
            arr = fam.hash_array(r, xs)
            for i, x in enumerate([1, 2, 2**63]):
                assert int(arr[i]) == fam.hash_one(r, x)

    def test_hash_all_shape_and_values(self):
        fam = HashFamily(3, seed=11)
        xs = np.array([10, 20], dtype=np.uint64)
        all_h = fam.hash_all(xs)
        assert all_h.shape == (2, 3)
        for i, x in enumerate([10, 20]):
            for r in range(3):
                assert int(all_h[i, r]) == fam.hash_one(r, x)


class TestBankedIndexer:
    def test_rejects_bad_bank_size(self):
        with pytest.raises(ConfigError):
            BankedIndexer(3, 0)

    def test_indices_in_correct_banks(self):
        idx = BankedIndexer(3, 100, seed=5)
        rows = idx.indices(np.arange(50, dtype=np.uint64))
        for r in range(3):
            assert (rows[:, r] >= r * 100).all()
            assert (rows[:, r] < (r + 1) * 100).all()

    def test_k_counters_always_distinct(self):
        idx = BankedIndexer(4, 10, seed=5)  # tiny banks to stress it
        rows = idx.indices(np.arange(200, dtype=np.uint64))
        for row in rows:
            assert len(set(row.tolist())) == 4  # disjoint banks guarantee it

    def test_indices_one_matches_batch(self):
        idx = BankedIndexer(3, 64, seed=8)
        batch = idx.indices(np.array([42, 77], dtype=np.uint64))
        np.testing.assert_array_equal(idx.indices_one(42), batch[0])
        np.testing.assert_array_equal(idx.indices_one(77), batch[1])

    def test_fixed_mapping_per_flow(self):
        # Section 3.1: each flow maps to k *fixed* counters forever.
        idx = BankedIndexer(3, 64, seed=8)
        a = idx.indices_one(123)
        b = idx.indices_one(123)
        np.testing.assert_array_equal(a, b)

    def test_total_counters(self):
        idx = BankedIndexer(5, 7)
        assert idx.total_counters == 35

    def test_bank_occupancy_roughly_uniform(self):
        idx = BankedIndexer(1, 32, seed=3)
        rows = idx.indices(np.arange(32000, dtype=np.uint64))
        counts = np.bincount(rows[:, 0], minlength=32)
        assert counts.min() > 700 and counts.max() < 1300
