"""Tests for per-flow time-series analysis."""

import numpy as np
import pytest

from repro.analysis.timeseries import detect_spikes, growth_rate, robust_zscores
from repro.errors import ConfigError


class TestRobustZscores:
    def test_centered_on_median(self):
        z = robust_zscores(np.array([1.0, 2.0, 3.0, 4.0, 100.0]))
        assert z[2] == pytest.approx(0.0)  # the median itself
        assert z[4] > 10  # the outlier

    def test_outlier_does_not_inflate_scale(self):
        base = np.array([10.0, 11.0, 9.0, 10.0, 10.0])
        spiked = np.append(base, 1000.0)
        z = robust_zscores(spiked)
        # The inliers stay near zero despite the huge outlier.
        assert np.abs(z[:5]).max() < 3

    def test_constant_series(self):
        z = robust_zscores(np.full(5, 7.0))
        np.testing.assert_allclose(z, 0.0)


class TestDetectSpikes:
    def test_detects_single_spike(self):
        series = np.array([10.0, 11, 9, 10, 300, 10, 11])
        alerts = detect_spikes(series)
        assert len(alerts) == 1
        assert alerts[0].epoch == 4
        assert alerts[0].value == 300
        assert alerts[0].score > 3.5

    def test_quiet_series_no_alerts(self):
        rng = np.random.default_rng(2)
        series = 100 + rng.normal(0, 3, size=50)
        # Threshold 4: P(any |z| > 4) across 50 Gaussian samples ~ 0.3 %.
        assert detect_spikes(series, threshold=4.0) == []

    def test_noise_floor_suppresses_sketch_noise(self):
        series = np.array([10.0, 10, 10, 10, 40, 10])
        assert len(detect_spikes(series)) == 1
        assert detect_spikes(series, noise_floor=50.0) == []

    def test_short_series_no_alerts(self):
        assert detect_spikes(np.array([1.0, 100.0])) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            detect_spikes(np.zeros(5), threshold=0)
        with pytest.raises(ConfigError):
            detect_spikes(np.zeros(5), noise_floor=-1)

    def test_with_epochal_caesar(self, tiny_trace):
        """End to end: a flow spiking in one epoch raises one alert."""
        from repro.core.config import CaesarConfig
        from repro.core.epochs import EpochalCaesar

        ec = EpochalCaesar(
            CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=1024)
        )
        fid = 424242
        for count in (100, 110, 95, 4000, 105, 98):
            ec.process(np.full(count, fid, dtype=np.uint64))
            ec.close_epoch()
        series = ec.flow_series(fid)
        alerts = detect_spikes(series, threshold=3.0)
        assert [a.epoch for a in alerts] == [3]


class TestGrowthRate:
    def test_flat_series(self):
        assert growth_rate(np.full(5, 100.0)) == pytest.approx(1.0)

    def test_doubling(self):
        series = 10 * 2.0 ** np.arange(6)
        assert growth_rate(series) == pytest.approx(2.0, rel=1e-6)

    def test_decay(self):
        series = 1000 * 0.5 ** np.arange(5)
        assert growth_rate(series) < 1.0

    def test_zeros_floored(self):
        assert growth_rate(np.array([0.0, 0.0, 8.0])) > 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            growth_rate(np.array([1.0]))
