"""Odds-and-ends coverage: scalar paths and boundary conditions not
exercised by the main suites."""

import numpy as np
import pytest

from repro.baselines.compression.base import CompressedCounterArray
from repro.baselines.compression.disco import DiscoCurve
from repro.cachesim.base import CacheStats, EvictionReason
from repro.core.config import CaesarConfig
from repro.core.epochs import EpochalCaesar
from repro.errors import ConfigError
from repro.memmodel.technologies import LatencyModel


class TestCompressedCounterScalarPaths:
    def test_increment_advances_probabilistically(self):
        curve = DiscoCurve(2.0, 100, 10_000)
        arr = CompressedCounterArray(curve, 1, 100, seed=5)
        for _ in range(200):
            arr.increment(0)
        assert 0 < arr.values[0] <= 100

    def test_increment_at_capacity_counts_saturation(self):
        curve = DiscoCurve(2.0, 4, 100)
        arr = CompressedCounterArray(curve, 1, 4, seed=5)
        arr._values[0] = 4
        arr.increment(0)
        assert arr.saturated_updates == 1
        assert arr.values[0] == 4

    def test_increment_batch_respects_capacity(self):
        curve = DiscoCurve(2.0, 8, 500)
        arr = CompressedCounterArray(curve, 2, 8, seed=5)
        arr.increment_batch(np.zeros(5000, dtype=np.int64))
        assert arr.values[0] <= 8
        assert arr.values[1] == 0

    def test_estimate_vectorized(self):
        curve = DiscoCurve(2.0, 100, 10_000)
        arr = CompressedCounterArray(curve, 4, 100, seed=5)
        arr._values[:] = [0, 10, 50, 100]
        est = arr.estimate(np.array([0, 1, 2, 3]))
        assert est[0] == 0.0
        assert est[3] == pytest.approx(10_000)
        assert np.all(np.diff(est) > 0)


class TestCacheStats:
    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_record_eviction_histogram(self):
        s = CacheStats()
        s.record_eviction(5, EvictionReason.OVERFLOW)
        s.record_eviction(5, EvictionReason.REPLACEMENT)
        s.record_eviction(2, EvictionReason.REPLACEMENT)
        assert s.eviction_value_counts == {5: 2, 2: 1}
        assert s.total_evictions == 3
        assert s.evicted_packets == 12


class TestLatencyBoundaries:
    def test_loss_zero_at_equal_speed(self):
        lat = LatencyModel()
        assert lat.loss_rate_at_line_rate(lat.packet_interarrival_ns) == 0.0

    def test_loss_approaches_one(self):
        lat = LatencyModel()
        assert lat.loss_rate_at_line_rate(1e9) > 0.999999


class TestEpochEdgeCases:
    def test_live_query_on_untouched_epoch(self):
        ec = EpochalCaesar(
            CaesarConfig(cache_entries=8, entry_capacity=8, k=3, bank_size=32)
        )
        est = ec.estimate_current(np.array([1, 2], dtype=np.uint64))
        np.testing.assert_allclose(est, 0.0)

    def test_empty_epoch_closes_cleanly(self):
        ec = EpochalCaesar(
            CaesarConfig(cache_entries=8, entry_capacity=8, k=3, bank_size=32)
        )
        record = ec.close_epoch()
        assert record.num_packets == 0
        assert record.counter_values.sum() == 0
        est = ec.estimate(0, np.array([1], dtype=np.uint64))
        assert est[0] == pytest.approx(0.0)


class TestConfigDescribeAndRepr:
    def test_describe_round_trips_fields(self):
        cfg = CaesarConfig(
            cache_entries=7, entry_capacity=9, k=4, bank_size=11,
            counter_capacity=255, replacement="random",
        )
        text = cfg.describe()
        for fragment in ("M=7", "y=9", "k=4", "L=11", "l=255", "random"):
            assert fragment in text

    def test_config_is_frozen(self):
        cfg = CaesarConfig(cache_entries=7, entry_capacity=9)
        with pytest.raises(Exception):
            cfg.k = 5

    def test_config_hashable_for_caching(self):
        a = CaesarConfig(cache_entries=7, entry_capacity=9)
        b = CaesarConfig(cache_entries=7, entry_capacity=9)
        assert a == b
        assert len({a, b}) == 1
