"""Tests for bit-packed storage and tabulation hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigError
from repro.hashing.tabulation import TabulationFamily, TabulationHash, TabulationIndexer
from repro.sram.bitpacked import BitPackedArray


class TestBitPackedArray:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BitPackedArray(0, 8)
        with pytest.raises(ConfigError):
            BitPackedArray(8, 0)
        with pytest.raises(ConfigError):
            BitPackedArray(8, 64)

    def test_set_get_roundtrip(self):
        arr = BitPackedArray(100, 20)
        arr.set(5, 12345)
        arr.set(99, (1 << 20) - 1)
        assert arr.get(5)[0] == 12345
        assert arr.get(99)[0] == (1 << 20) - 1
        assert arr.get(0)[0] == 0

    def test_straddling_fields(self):
        # 20-bit fields: field 3 occupies bits 60..79 — across words.
        arr = BitPackedArray(10, 20)
        arr.set(3, 0xABCDE)
        assert arr.get(3)[0] == 0xABCDE
        # Neighbours untouched.
        assert arr.get(2)[0] == 0 and arr.get(4)[0] == 0

    def test_overwrite(self):
        arr = BitPackedArray(4, 7)
        arr.set(1, 100)
        arr.set(1, 27)
        assert arr.get(1)[0] == 27

    def test_value_range_enforced(self):
        arr = BitPackedArray(4, 8)
        with pytest.raises(CapacityError):
            arr.set(0, 256)
        with pytest.raises(CapacityError):
            arr.set(0, -1)

    def test_index_range_enforced(self):
        arr = BitPackedArray(4, 8)
        with pytest.raises(ConfigError):
            arr.get(4)
        with pytest.raises(ConfigError):
            arr.set(-1, 0)

    def test_pack_unpack(self):
        values = np.array([0, 1, 255, 77, 128], dtype=np.int64)
        arr = BitPackedArray.pack(values, 8)
        np.testing.assert_array_equal(arr.unpack(), values)

    def test_memory_accounting_matches_paper_math(self):
        # The Fig. 4 geometry: 3 banks x 12501 counters x 20 bits.
        arr = BitPackedArray(3 * 12501, 20)
        assert arr.memory_kilobytes == pytest.approx(91.55, abs=0.05)
        # The real buffer is within one word of the payload.
        assert arr.buffer_bytes - arr.memory_bits // 8 < 16

    @given(
        st.integers(min_value=1, max_value=63),
        st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, width, raw_values):
        values = np.array([v & ((1 << width) - 1) for v in raw_values], dtype=np.int64)
        arr = BitPackedArray.pack(values, width)
        np.testing.assert_array_equal(arr.unpack(), values)


class TestTabulationHash:
    def test_deterministic(self):
        h = TabulationHash(seed=1)
        assert h.hash_one(42) == h.hash_one(42)

    def test_seed_dependence(self):
        assert TabulationHash(1).hash_one(42) != TabulationHash(2).hash_one(42)

    def test_array_matches_scalar(self):
        h = TabulationHash(seed=3)
        keys = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        arr = h.hash_array(keys)
        for i, key in enumerate([0, 1, 2**63, 2**64 - 1]):
            assert int(arr[i]) == h.hash_one(key)

    def test_uniformity(self):
        h = TabulationHash(seed=4)
        buckets = h.hash_array(np.arange(32_000, dtype=np.uint64)) % np.uint64(16)
        counts = np.bincount(buckets.astype(np.int64), minlength=16)
        expected = 2000
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 50


class TestTabulationIndexer:
    def test_interface_matches_banked_indexer(self):
        idx = TabulationIndexer(3, 128, seed=9)
        rows = idx.indices(np.arange(100, dtype=np.uint64))
        assert rows.shape == (100, 3)
        for r in range(3):
            assert (rows[:, r] >= r * 128).all() and (rows[:, r] < (r + 1) * 128).all()
        np.testing.assert_array_equal(idx.indices_one(42), rows[42])

    def test_family_validation(self):
        with pytest.raises(ConfigError):
            TabulationFamily(0)
        with pytest.raises(ConfigError):
            TabulationIndexer(3, 0)

    def test_caesar_accuracy_matches_splitmix(self, small_trace):
        """The hash-family ablation: accuracy should not depend on
        which (good) family selects counters."""
        from repro.analysis.metrics import top_flow_are
        from repro.core.caesar import Caesar
        from repro.core.config import CaesarConfig

        def run(use_tabulation: bool) -> float:
            caesar = Caesar(
                CaesarConfig(
                    cache_entries=256, entry_capacity=54, k=3, bank_size=1024, seed=6
                )
            )
            if use_tabulation:
                caesar.indexer = TabulationIndexer(3, 1024, seed=6)
            caesar.process(small_trace.packets)
            caesar.finalize()
            est = caesar.estimate(small_trace.flows.ids)
            return top_flow_are(est, small_trace.flows.sizes, top=20)

        are_mix, are_tab = run(False), run(True)
        assert abs(are_mix - are_tab) < 0.25
