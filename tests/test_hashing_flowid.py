"""Unit tests for flow-ID derivation from headers."""

import numpy as np
import pytest

from repro.hashing import flowid
from repro.types import FiveTuple


class TestAphash:
    def test_deterministic(self):
        assert flowid.aphash(b"hello") == flowid.aphash(b"hello")

    def test_32_bit_range(self):
        assert 0 <= flowid.aphash(b"\x00" * 13) < 2**32
        assert 0 <= flowid.aphash(bytes(range(13))) < 2**32

    def test_sensitive_to_every_byte(self):
        base = bytes(13)
        h0 = flowid.aphash(base)
        for i in range(13):
            mutated = bytearray(base)
            mutated[i] = 0xFF
            assert flowid.aphash(bytes(mutated)) != h0


class TestFlowIdFromFiveTuple:
    def test_deterministic(self):
        ft = FiveTuple(0x0A000001, 0x0A000002, 1234, 80, 6)
        assert flowid.flow_id_from_five_tuple(ft) == flowid.flow_id_from_five_tuple(ft)

    def test_64_bit(self):
        ft = FiveTuple(1, 2, 3, 4, 17)
        assert 0 <= flowid.flow_id_from_five_tuple(ft) < 2**64

    def test_direction_sensitive(self):
        a = FiveTuple(1, 2, 1000, 80, 6)
        b = FiveTuple(2, 1, 80, 1000, 6)
        assert flowid.flow_id_from_five_tuple(a) != flowid.flow_id_from_five_tuple(b)

    def test_batch_matches_scalar(self):
        tuples = [FiveTuple(i, i + 1, 1000 + i, 443, 6) for i in range(5)]
        ids = flowid.flow_ids_from_headers(tuples)
        assert ids.dtype == np.uint64
        for i, t in enumerate(tuples):
            assert int(ids[i]) == flowid.flow_id_from_five_tuple(t)


class TestUniqueFlowIds:
    def test_count_and_uniqueness(self):
        ids = flowid.unique_flow_ids(5000, seed=1)
        assert len(ids) == 5000
        assert len(np.unique(ids)) == 5000

    def test_deterministic_per_seed(self):
        np.testing.assert_array_equal(
            flowid.unique_flow_ids(100, seed=2), flowid.unique_flow_ids(100, seed=2)
        )

    def test_seed_changes_ids(self):
        assert not np.array_equal(
            flowid.unique_flow_ids(100, seed=2), flowid.unique_flow_ids(100, seed=3)
        )

    def test_not_sorted(self):
        ids = flowid.unique_flow_ids(1000, seed=4)
        assert not np.all(np.diff(ids.astype(np.float64)) > 0)


class TestSyntheticFiveTuples:
    def test_distinct(self):
        tuples = flowid.synthetic_five_tuples(500, seed=0)
        assert len(set(tuples)) == 500

    def test_plausible_fields(self):
        for t in flowid.synthetic_five_tuples(100, seed=1):
            assert t.protocol in (1, 6, 17)
            assert 1024 <= t.src_port < 65536
            assert t.dst_port in (80, 443, 53, 22, 25, 123, 8080)
