"""Unit tests for the LRU and random replacement policies."""

import numpy as np
import pytest

from repro.cachesim.lru import LRUPolicy
from repro.cachesim.random_replace import RandomPolicy
from repro.errors import CapacityError


class TestLRUPolicy:
    def test_victim_is_least_recent(self):
        p = LRUPolicy()
        for fid in (1, 2, 3):
            p.insert(fid)
        assert p.victim() == 1
        p.touch(1)  # now 2 is the oldest
        assert p.victim() == 2

    def test_remove(self):
        p = LRUPolicy()
        p.insert(1)
        p.insert(2)
        p.remove(1)
        assert p.victim() == 2
        assert len(p) == 1

    def test_victim_does_not_remove(self):
        p = LRUPolicy()
        p.insert(7)
        assert p.victim() == 7
        assert len(p) == 1

    def test_empty_victim_raises(self):
        with pytest.raises(CapacityError):
            LRUPolicy().victim()

    def test_insert_then_touch_sequence(self):
        p = LRUPolicy()
        for fid in range(5):
            p.insert(fid)
        for fid in (0, 1, 2):
            p.touch(fid)
        assert p.victim() == 3


class TestRandomPolicy:
    def test_victim_is_resident(self):
        p = RandomPolicy(seed=1)
        for fid in (10, 20, 30):
            p.insert(fid)
        for _ in range(20):
            assert p.victim() in (10, 20, 30)

    def test_remove_swaps_correctly(self):
        p = RandomPolicy(seed=1)
        for fid in range(10):
            p.insert(fid)
        p.remove(0)  # head removal exercises the swap path
        p.remove(9)  # tail removal exercises the no-swap path
        assert len(p) == 8
        for _ in range(50):
            assert p.victim() in set(range(1, 9))

    def test_touch_is_noop(self):
        p = RandomPolicy(seed=1)
        p.insert(5)
        p.touch(5)
        assert len(p) == 1

    def test_empty_victim_raises(self):
        with pytest.raises(CapacityError):
            RandomPolicy().victim()

    def test_victims_roughly_uniform(self):
        p = RandomPolicy(seed=2)
        for fid in range(4):
            p.insert(fid)
        counts = np.zeros(4)
        for _ in range(4000):
            counts[p.victim()] += 1
        assert counts.min() > 800  # expected 1000 each

    def test_remove_missing_raises(self):
        p = RandomPolicy()
        p.insert(1)
        with pytest.raises(KeyError):
            p.remove(2)
