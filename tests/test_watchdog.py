"""Watchdog, backoff, and graceful degradation (repro.runtime.watchdog).

The fail-slow half of the runtime's fault model: SIGSTOPped (hung)
workers are detected by heartbeat silence and escalated
nudge → SIGTERM → SIGKILL into the ordinary crash-recovery path;
repeated crashes attributed to one chunk quarantine it to a CRC'd
side WAL while ingest continues; queries degrade (skip, NaN-fill,
report coverage) instead of hanging. Throughout, the no-fault contract
is untouched: a drained runtime is bit-identical to the offline
single-process run — and a *degraded* run is bit-identical to an
offline run over the same surviving input (offline_twin_excluding).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import FaultPlan, parse_fault_spec
from repro.runtime.client import StreamingRuntime
from repro.runtime.watchdog import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    PartialEstimate,
    RestartBudget,
    ShardQueryStatus,
    WatchdogConfig,
    backoff_delay,
    load_quarantine,
    offline_twin_excluding,
    quarantine_chunk,
    sweep_stale_tmp,
)
from tests.conftest import wait_until

TRANSPORTS = ["queue", "shm"]


def make_config(seed=5):
    return CaesarConfig(
        cache_entries=64,
        entry_capacity=16,
        k=3,
        bank_size=512,
        seed=seed,
        engine="batched",
    )


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(11)
    return rng.zipf(1.25, 12_000).astype(np.uint64) % 2048


@pytest.fixture(scope="module")
def flows(stream):
    return np.unique(stream)


def offline_baseline(config, num_shards, packets):
    base = ShardedCaesar(config, num_shards)
    base.process(packets)
    base.finalize()
    return base


# -- restart discipline (pure units) ------------------------------------------


class TestRestartBudget:
    def test_capacity_then_exhaustion(self):
        budget = RestartBudget(2)
        assert budget.take(now=0.0)
        assert budget.take(now=0.0)
        assert not budget.take(now=1000.0)  # refill 0: never comes back
        assert budget.wait_for_token(now=1000.0) is None

    def test_refill_turns_death_into_throttling(self):
        budget = RestartBudget(1, refill_per_s=0.5)
        assert budget.take(now=0.0)
        assert not budget.take(now=0.1)
        # Needs ~2s per token at 0.5/s; wait_for_token reports the gap.
        wait = budget.wait_for_token(now=0.1)
        assert wait is not None and 1.5 < wait <= 2.0
        assert budget.take(now=2.5)

    def test_refill_clamps_at_capacity(self):
        budget = RestartBudget(2, refill_per_s=100.0)
        assert budget.take(now=0.0)
        assert budget.take(now=1000.0)
        assert budget.take(now=1000.0)  # clamp: at most 2 accrued
        assert not budget.take(now=1000.0)


class TestBackoffDelay:
    def test_first_failure_is_immediate(self):
        assert backoff_delay(1, seed=7, shard=0) == 0.0
        assert backoff_delay(0, seed=7, shard=0) == 0.0

    def test_deterministic_and_growing(self):
        delays = [backoff_delay(n, base=0.25, seed=9, shard=3) for n in range(2, 8)]
        again = [backoff_delay(n, base=0.25, seed=9, shard=3) for n in range(2, 8)]
        assert delays == again  # seeded jitter: bit-reproducible
        bases = [d - d % 0.25 for d in delays]
        assert bases == sorted(bases)
        # The n-th failure waits base * 2**(n-2) plus jitter in [0, base).
        assert 0.25 <= delays[1] < 0.75

    def test_distinct_shards_get_distinct_jitter(self):
        assert backoff_delay(3, seed=9, shard=0) != backoff_delay(3, seed=9, shard=1)

    def test_cap(self):
        d = backoff_delay(40, base=0.25, max_delay=5.0, seed=1, shard=0)
        assert 5.0 <= d < 5.25


class TestCircuitBreaker:
    def test_lifecycle(self):
        breaker = CircuitBreaker()
        assert breaker.state == BREAKER_CLOSED and breaker.level == 0
        delay = breaker.record_failure(10.0, base=0.25, max_delay=30.0, seed=1, shard=0)
        assert breaker.state == BREAKER_OPEN and breaker.level == 1
        assert delay == 0.0 and breaker.next_attempt == 10.0  # first: immediate
        breaker.record_probation()
        assert breaker.state == BREAKER_HALF_OPEN and breaker.level == 2
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED and breaker.consecutive == 0

    def test_consecutive_failures_back_off(self):
        breaker = CircuitBreaker()
        breaker.record_failure(0.0, base=0.25, max_delay=30.0, seed=1, shard=0)
        breaker.record_probation()
        delay = breaker.record_failure(1.0, base=0.25, max_delay=30.0, seed=1, shard=0)
        assert delay > 0.0 and breaker.next_attempt == 1.0 + delay


class TestWatchdogConfig:
    def test_for_timeout_derives_proportionate_graces(self):
        cfg = WatchdogConfig.for_timeout(0.8)
        assert cfg.hang_timeout == 0.8
        assert cfg.term_grace == cfg.kill_grace == pytest.approx(0.2)
        big = WatchdogConfig.for_timeout(30.0)
        assert big.term_grace == big.kill_grace == 2.0  # clamped


# -- fault-spec parsing -------------------------------------------------------


class TestRuntimeFaultSpec:
    def test_parse_runtime_keys(self):
        plan = parse_fault_spec("hang=6,slow=0.05,crash=5,crash_limit=2")
        assert plan.hang_at_chunk == 6
        assert plan.slow_apply == pytest.approx(0.05)
        assert plan.crash_on_seq == 5 and plan.crash_limit == 2
        assert plan.runtime_enabled

    def test_runtime_enabled_is_orthogonal_to_eviction_faults(self):
        assert not FaultPlan().runtime_enabled
        assert not parse_fault_spec("drop=0.1").runtime_enabled
        assert FaultPlan(slow_apply=0.01).runtime_enabled
        assert FaultPlan(hang_at_chunk=0).runtime_enabled
        assert FaultPlan(crash_on_seq=0).runtime_enabled

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(slow_apply=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(hang_at_chunk=-2)
        with pytest.raises(ConfigError):
            FaultPlan(crash_limit=-1)


# -- quarantine store (pure units) --------------------------------------------


class TestQuarantineStore:
    def test_roundtrip_with_evidence(self, tmp_path):
        pkts = np.arange(50, dtype=np.uint64)
        lens = np.full(50, 7, dtype=np.int64)
        quarantine_chunk(tmp_path, 1, 4, pkts, lens, crashes=3, reason="boom")
        quarantine_chunk(
            tmp_path, 1, 9, pkts[:10], None, crashes=2, reason="again"
        )
        records = load_quarantine(tmp_path)
        assert [(r.shard, r.seq, r.n_packets, r.crashes) for r in records] == [
            (1, 4, 50, 3),
            (1, 9, 10, 2),
        ]
        np.testing.assert_array_equal(records[0].packets, pkts)
        np.testing.assert_array_equal(records[0].lengths, lens)
        assert records[1].lengths is None
        assert records[0].reason == "boom"

    def test_load_scans_shard_subdirs(self, tmp_path):
        pkts = np.arange(5, dtype=np.uint64)
        quarantine_chunk(tmp_path / "shard0", 0, 2, pkts, None, crashes=1, reason="x")
        quarantine_chunk(tmp_path / "shard3", 3, 0, pkts, None, crashes=1, reason="y")
        records = load_quarantine(tmp_path)
        assert sorted((r.shard, r.seq) for r in records) == [(0, 2), (3, 0)]

    def test_reason_is_truncated(self, tmp_path):
        quarantine_chunk(
            tmp_path,
            0,
            0,
            np.arange(3, dtype=np.uint64),
            None,
            crashes=1,
            reason="x" * 10_000,
        )
        (line,) = (tmp_path / "quarantine.json").read_text().splitlines()
        assert len(json.loads(line)["reason"]) == 2000


class TestStaleTmpSweep:
    def test_sweeps_only_tmp_files(self, tmp_path):
        (tmp_path / ".tmp_ck_000007.npz").write_bytes(b"torn")
        (tmp_path / ".tmp_ck_000009_final.npz").write_bytes(b"torn")
        (tmp_path / "ck_000007.npz").write_bytes(b"keep")
        assert sweep_stale_tmp(tmp_path) == 2
        assert (tmp_path / "ck_000007.npz").exists()
        assert not list(tmp_path.glob(".tmp_*"))

    def test_missing_dir_is_zero(self, tmp_path):
        assert sweep_stale_tmp(tmp_path / "nope") == 0


# -- partial answers (pure units) ---------------------------------------------


class TestPartialEstimate:
    def test_array_protocol(self):
        est = np.array([1.0, np.nan, 3.0])
        pe = PartialEstimate(
            estimates=est,
            degraded=True,
            coverage=0.5,
            shards=(ShardQueryStatus(0, "ok", 1.0), ShardQueryStatus(1, "skipped", 1.0)),
        )
        assert len(pe) == 3
        np.testing.assert_array_equal(np.asarray(pe), est)
        assert np.asarray(pe, dtype=np.float32).dtype == np.float32


# -- hang detection + recovery (process-level chaos) --------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestHangRecovery:
    def test_sigstop_worker_is_detected_killed_and_recovered(
        self, tmp_path, stream, flows, transport
    ):
        """SIGSTOP (a hang the process-liveness poll cannot see) on one
        worker mid-ingest: the watchdog walks nudge → SIGTERM → SIGKILL,
        the ordinary recovery path repairs the shard, and the drained
        runtime is still bit-identical to the offline run."""
        config = make_config()
        base = offline_baseline(config, 2, stream)
        registry = MetricsRegistry()
        chunks = np.array_split(stream, 12)
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport=transport,
            registry=registry,
            hang_timeout=0.8,
            max_restarts=5,
            restart_refill_per_s=5.0,
            checkpoint_every=2,
        ) as rt:
            for i, chunk in enumerate(chunks):
                if i == 4:
                    rt.kill_worker(0, signal.SIGSTOP)
                rt.ingest(chunk)
            # The escalation runs off pump(): poll it until the SIGKILL
            # lands and the shard restarts, not a fixed sleep.
            wait_until(
                lambda: bool(rt.supervisor.pump() or rt.restarts >= 1),
                timeout=30.0,
                desc="watchdog SIGKILL + restart of the stopped worker",
            )
            result = rt.drain()
            assert result.restarts >= 1
            assert registry.counter("runtime.watchdog.hangs").value >= 1
            assert registry.counter("runtime.watchdog.nudges").value >= 1
            assert registry.counter("runtime.watchdog.sigkills").value >= 1
            assert result.num_packets == len(stream)
            assert not result.degraded
            base_digests = tuple(s.checkpoint().digest for s in base.shards)
            assert result.shard_digests == base_digests
            np.testing.assert_array_equal(
                rt.query(flows), base.estimate(flows, "csm", clip_negative=True)
            )

    def test_sigstop_at_drain_time_is_recovered(
        self, tmp_path, stream, flows, transport
    ):
        """A worker stopped just before drain: the watchdog must stay
        armed through the drain wait, or wait_finalized spins out."""
        config = make_config()
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport=transport,
            hang_timeout=0.8,
            max_restarts=5,
            restart_refill_per_s=5.0,
        ) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            rt.kill_worker(1, signal.SIGSTOP)
            result = rt.drain(timeout=60.0)
            assert result.restarts >= 1
            base_digests = tuple(s.checkpoint().digest for s in base.shards)
            assert result.shard_digests == base_digests


# -- poison chunks -------------------------------------------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestPoisonChunk:
    def test_quarantine_keeps_ingesting_and_accounts_mass(
        self, tmp_path, stream, flows, transport
    ):
        """A chunk that crashes its worker on every attempt is blamed,
        quarantined after N attributed crashes, and the runtime keeps
        ingesting; queries report reduced coverage and the drained state
        is bit-identical to an offline run that skips exactly that
        chunk."""
        config = make_config()
        registry = MetricsRegistry()
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport=transport,
            registry=registry,
            worker_faults={0: FaultPlan(crash_on_seq=2, crash_limit=0)},
            quarantine_after=2,
            restart_refill_per_s=50.0,
            max_restarts=3,
            hang_timeout=30.0,
        ) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            # The crash → restart → re-crash → quarantine cycle is driven
            # by pump(); poll it rather than ingesting filler packets
            # (extra input would break the offline-twin comparison).
            wait_until(
                lambda: bool(
                    rt.supervisor.pump()
                    or registry.counter("runtime.quarantine.chunks").value >= 1
                ),
                timeout=30.0,
                desc="poison chunk quarantined",
            )
            live = rt.query(flows[:8], detail=True)
            assert isinstance(live, PartialEstimate)
            assert live.degraded
            assert any(s.coverage < 1.0 for s in live.shards)
            result = rt.drain()
            final = rt.query(flows)

        assert result.degraded
        assert len(result.quarantined) == 1
        shard, seq, n_packets = result.quarantined[0]
        assert (shard, seq) == (0, 2) and n_packets > 0
        assert result.quarantined_packets == n_packets
        # Mass accounting: the workers applied everything except the
        # quarantined chunk, and the spilled evidence matches.
        assert result.num_packets == len(stream) - n_packets
        (record,) = load_quarantine(tmp_path)
        assert (record.shard, record.seq, record.n_packets) == (0, 2, n_packets)
        assert record.crashes >= 2
        assert record.packets is not None and len(record.packets) == n_packets
        assert "injected crash" in record.reason
        # Degraded bit-identity: equal to an offline run over the same
        # surviving input (same chunking, same skipped (shard, seq)).
        offline = offline_twin_excluding(
            config,
            result.shard_map,
            stream,
            chunk_packets=1500,
            quarantined={(s, q) for s, q, _ in result.quarantined},
        )
        np.testing.assert_array_equal(
            final, offline.estimate(flows, "csm", clip_negative=True)
        )
        offline_digests = tuple(s.checkpoint().digest for s in offline.shards)
        assert result.shard_digests == offline_digests

    def test_crash_limit_bounds_the_fault(self, tmp_path, stream, flows, transport):
        """crash_limit=1: one injected crash, ordinary recovery, nothing
        quarantined — the no-fault contract still holds end to end."""
        config = make_config()
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport=transport,
            worker_faults={0: FaultPlan(crash_on_seq=1, crash_limit=1)},
            quarantine_after=3,
            max_restarts=5,
        ) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            result = rt.drain()
            assert result.restarts >= 1
            assert result.quarantined == ()
            assert not result.degraded
            assert result.num_packets == len(stream)
            base_digests = tuple(s.checkpoint().digest for s in base.shards)
            assert result.shard_digests == base_digests
            np.testing.assert_array_equal(
                rt.query(flows), base.estimate(flows, "csm", clip_negative=True)
            )


# -- degraded query plane ------------------------------------------------------


class TestPartialQueries:
    def test_dead_shard_is_skipped_with_nan_fill(self, tmp_path, stream, flows):
        """With the restart budget empty but refilling, a killed shard
        stays down (breaker open) while queries keep answering: its
        flows come back NaN with status 'skipped', and detail=True
        reports degraded coverage."""
        with StreamingRuntime(
            make_config(),
            2,
            state_dir=tmp_path,
            transport="queue",
            max_restarts=0,
            restart_refill_per_s=0.02,  # 50s/token: down for the test
            query_deadline=5.0,
        ) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            rt.kill_worker(0)
            wait_until(
                lambda: not rt.supervisor.handles[0].process.is_alive(),
                desc="worker 0 death",
            )
            detail = rt.query(flows, detail=True)
            assert isinstance(detail, PartialEstimate)
            assert detail.degraded
            assert detail.coverage < 1.0
            statuses = {s.shard: s.status for s in detail.shards}
            assert statuses[0] == "skipped" and statuses[1] == "ok"
            owners = rt.partitioner.shard_of(flows)
            assert np.isnan(detail.estimates[owners == 0]).all()
            assert not np.isnan(detail.estimates[owners == 1]).any()
            # Default (detail=False) shape: the same NaN-holed ndarray.
            plain = rt.query(flows)
            assert isinstance(plain, np.ndarray)
            assert np.isnan(plain[owners == 0]).all()

    def test_clean_runtime_reports_full_coverage(self, tmp_path, stream, flows):
        with StreamingRuntime(
            make_config(), 2, state_dir=tmp_path, transport="queue"
        ) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            detail = rt.query(flows[:16], detail=True)
            assert not detail.degraded
            assert detail.coverage == 1.0
            assert all(s.status == "ok" for s in detail.shards)


# -- stale-artifact sweeping ---------------------------------------------------


class TestOrphanSweeping:
    def test_restart_and_drain_sweep_planted_artifacts(self, tmp_path, stream):
        """Plant a stale checkpoint temp file and (shm) an orphaned
        segment under the shard's namespace: both the restart path and
        the post-drain sweep must reclaim them."""
        with StreamingRuntime(
            make_config(),
            2,
            state_dir=tmp_path,
            transport="shm",
            max_restarts=3,
        ) as rt:
            rt.ingest_stream(stream[:4000], chunk_packets=1000)
            shard_dir = tmp_path / "shard0"
            planted_tmp = shard_dir / ".tmp_ck_000001.npz"
            planted_tmp.write_bytes(b"torn checkpoint write")
            channel = rt.supervisor.handles[0].channel
            planted_shm = Path("/dev/shm") / f"{channel.segment_prefix}planted"
            has_dev_shm = planted_shm.parent.is_dir()
            if has_dev_shm:
                planted_shm.write_bytes(b"leaked segment")
            rt.kill_worker(0)
            wait_until(
                lambda: bool(rt.supervisor.pump() or rt.restarts >= 1),
                desc="restart after SIGKILL",
            )
            assert not planted_tmp.exists()
            if has_dev_shm:
                assert not planted_shm.exists()
            # And again on the drain path.
            planted_tmp.write_bytes(b"torn again")
            result = rt.drain()
            assert not planted_tmp.exists()
            assert result.restarts >= 1

    def test_shm_channel_namespaces_are_disjoint(self, tmp_path):
        """Two runtimes over the same shard ids must never sweep each
        other's segments: the per-channel namespace prefix is unique."""
        from repro.runtime.shm import SharedMemoryRingTransport

        reg = MetricsRegistry()
        t1 = SharedMemoryRingTransport()
        t2 = SharedMemoryRingTransport()
        import multiprocessing as mp

        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        c1 = t1.channel(0, ctx=ctx, policy="block", registry=reg)
        c2 = t2.channel(0, ctx=ctx, policy="block", registry=reg)
        assert c1.segment_prefix != c2.segment_prefix
        c1.close()
        c2.close()


# -- serve CLI: graceful signals ----------------------------------------------


def _serve_cmd(trace_path, *extra):
    return [
        sys.executable,
        "-u",
        "-m",
        "repro",
        "serve",
        "--trace",
        str(trace_path),
        "--workers",
        "2",
        "--sram-kb",
        "2",
        "--cache-kb",
        "1",
        "--chunk-packets",
        "512",
        *extra,
    ]


@pytest.fixture(scope="module")
def cli_trace_path(tmp_path_factory):
    from repro.cli import main

    path = str(tmp_path_factory.mktemp("serve-trace") / "t.npz")
    assert main(["trace", "--scale", "0.003", "--seed", "2", "--out", path]) == 0
    return path


def _spawn_serve(cli_trace_path, *extra):
    env = dict(os.environ)
    root = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        _serve_cmd(cli_trace_path, *extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()  # "serving t.npz over 2 shard workers ..."
    assert "serving" in banner
    return proc


@pytest.mark.slow
class TestServeSignals:
    def test_sigterm_drains_and_reports(self, cli_trace_path):
        # slow-apply on both workers keeps the stream in flight long
        # enough for the signal to land mid-ingest.
        proc = _spawn_serve(
            cli_trace_path,
            "--inject-worker",
            "0:slow=0.05",
            "--inject-worker",
            "1:slow=0.05",
        )
        time.sleep(0.3)  # into the ingest loop (banner already read)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0
        assert "draining and reporting" in out
        assert "ingested" in out and "final digest" in out

    def test_second_signal_force_exits_2(self, cli_trace_path):
        proc = _spawn_serve(
            cli_trace_path,
            "--inject-worker",
            "0:slow=0.05",
            "--inject-worker",
            "1:slow=0.05",
        )
        time.sleep(0.3)
        proc.send_signal(signal.SIGTERM)
        proc.send_signal(signal.SIGINT)  # second signal: force exit
        proc.communicate(timeout=120)
        assert proc.returncode == 2

    def test_interrupted_run_skips_offline_verification(self, cli_trace_path):
        proc = _spawn_serve(
            cli_trace_path,
            "--inject-worker",
            "0:slow=0.05",
            "--inject-worker",
            "1:slow=0.05",
            "--verify-offline",
        )
        time.sleep(0.3)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0
        assert "offline verification skipped" in out


@pytest.mark.slow
class TestServeFaultInjection:
    def test_hang_and_poison_end_to_end(self, cli_trace_path):
        """The CI watchdog-smoke scenario: one shard hangs (watchdog
        SIGKILL + recovery), another carries a poison chunk (quarantine),
        live queries report degraded=True, and --verify-offline proves
        the degraded run bit-identical to the exclusion twin."""
        env = dict(os.environ)
        root = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = root + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            _serve_cmd(
                cli_trace_path,
                "--inject-worker",
                "1:hang=6",
                "--inject-worker",
                "0:crash=5",
                "--hang-timeout",
                "1.0",
                "--quarantine-after",
                "2",
                "--restart-refill",
                "2.0",
                "--query-every",
                "4",
                "--verify-offline",
            ),
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "degraded=True" in out.stdout
        assert "quarantined" in out.stdout
        assert "offline verification: bit-identical" in out.stdout

    def test_inject_worker_bad_spec_exits_2(self, cli_trace_path):
        from repro.cli import main

        base = ["serve", "--trace", cli_trace_path, "--sram-kb", "2", "--cache-kb", "1"]
        assert main([*base, "--inject-worker", "nope"]) == 2
        assert main([*base, "--inject-worker", "9:hang=1"]) == 2


# -- measure() surfaces degradation -------------------------------------------


class TestMeasureDegradation:
    def test_clean_measure_is_not_degraded(self, tmp_path, stream):
        from repro.api import measure

        result = measure(
            stream=stream,
            workers=2,
            sram_kb=2,
            cache_kb=1,
            state_dir=str(tmp_path),
            chunk_packets=1500,
        )
        assert result.degraded is False
        assert result.quarantined_packets == 0
        assert result.runtime.quarantined == ()
