"""Tests for the shared types module and protocols."""

import numpy as np
import pytest

from repro.baselines.case import Case, CaseConfig
from repro.baselines.countmin import CountMin, CountMinConfig
from repro.baselines.rcs import RCS, RCSConfig
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.types import (
    FLOW_ID_DTYPE,
    FiveTuple,
    FlowSizeEstimator,
    StreamProcessor,
    as_flow_ids,
)


class TestAsFlowIds:
    def test_coerces_lists(self):
        arr = as_flow_ids([1, 2, 3])
        assert arr.dtype == FLOW_ID_DTYPE
        assert arr.tolist() == [1, 2, 3]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            as_flow_ids([[1, 2], [3, 4]])

    def test_passes_through_uint64(self):
        src = np.array([5, 6], dtype=np.uint64)
        out = as_flow_ids(src)
        assert out.dtype == np.uint64


class TestFiveTupleValidation:
    def test_valid(self):
        ft = FiveTuple(0xFFFFFFFF, 0, 0xFFFF, 0, 0xFF)
        assert ft.src_ip == 0xFFFFFFFF

    def test_hashable_and_equal(self):
        a = FiveTuple(1, 2, 3, 4, 6)
        b = FiveTuple(1, 2, 3, 4, 6)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_frozen(self):
        ft = FiveTuple(1, 2, 3, 4, 6)
        with pytest.raises(AttributeError):
            ft.src_ip = 9


class TestProtocols:
    """Every measurement scheme satisfies the shared protocols."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Caesar(CaesarConfig(cache_entries=4, entry_capacity=4, bank_size=16)),
            lambda: RCS(RCSConfig(k=3, bank_size=16)),
            lambda: Case(
                CaseConfig(
                    cache_entries=4, entry_capacity=4, num_counters=16,
                    counter_capacity=255, max_value=1000,
                )
            ),
            lambda: CountMin(CountMinConfig(depth=3, width=16)),
        ],
    )
    def test_estimator_protocol(self, factory):
        scheme = factory()
        assert isinstance(scheme, FlowSizeEstimator)
        assert isinstance(scheme, StreamProcessor)
