"""Tests for epoch-based measurement and online (live) queries."""

import numpy as np
import pytest

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.epochs import EpochalCaesar
from repro.errors import ConfigError, QueryError


def make_config(trace, **overrides):
    defaults = dict(
        cache_entries=max(8, trace.num_flows // 8),
        entry_capacity=max(2, int(2 * trace.mean_flow_size)),
        k=3,
        bank_size=max(64, trace.num_flows // 2),
        seed=21,
    )
    defaults.update(overrides)
    return CaesarConfig(**defaults)


class TestOnlineQuery:
    def test_live_estimates_track_resident_flows(self, tiny_trace):
        caesar = Caesar(make_config(tiny_trace))
        caesar.process(tiny_trace.packets)
        # No finalize: live query must still see the full mass.
        est = caesar.estimate_online(tiny_trace.flows.ids)
        top = np.argsort(tiny_trace.flows.sizes)[-5:]
        rel = np.abs(est[top] - tiny_trace.flows.sizes[top]) / tiny_trace.flows.sizes[top]
        assert rel.mean() < 0.4

    def test_online_equals_offline_after_finalize(self, tiny_trace):
        caesar = Caesar(make_config(tiny_trace))
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        online = caesar.estimate_online(tiny_trace.flows.ids)
        offline = caesar.estimate(tiny_trace.flows.ids, clip_negative=True)
        np.testing.assert_allclose(online, offline)

    def test_online_mass_accounting(self, tiny_trace):
        caesar = Caesar(make_config(tiny_trace))
        half = len(tiny_trace.packets) // 2
        caesar.process(tiny_trace.packets[:half])
        est = caesar.estimate_online(tiny_trace.flows.ids, clip_negative=False)
        # Estimated total at half time ~ packets seen so far (the
        # unclipped CSM sum is conserved in expectation; clipping
        # would bias it upward).
        assert est.sum() == pytest.approx(half, rel=0.3)


class TestReset:
    def test_reset_clears_state_keeps_mapping(self, tiny_trace):
        caesar = Caesar(make_config(tiny_trace))
        mapping_before = caesar.indexer.indices_one(12345)
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        caesar.reset()
        assert caesar.counters.total_mass == 0
        assert caesar.num_packets == 0
        assert caesar.recorded_mass == 0
        np.testing.assert_array_equal(caesar.indexer.indices_one(12345), mapping_before)
        # And it can measure again.
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.counters.total_mass == tiny_trace.num_packets


class TestEpochalCaesar:
    def test_epoch_lifecycle(self, tiny_trace):
        ec = EpochalCaesar(make_config(tiny_trace))
        third = len(tiny_trace.packets) // 3
        for i in range(3):
            ec.process(tiny_trace.packets[i * third : (i + 1) * third])
            rec = ec.close_epoch()
            assert rec.index == i
            assert rec.num_packets == third
        assert ec.num_epochs == 3
        assert len(ec.history) == 3

    def test_epoch_estimates_independent(self, tiny_trace):
        """Each epoch's estimates reflect only that epoch's packets."""
        ec = EpochalCaesar(make_config(tiny_trace))
        # Epoch 0: full trace; epoch 1: only the first flow repeated.
        ec.process(tiny_trace.packets)
        ec.close_epoch()
        lone = tiny_trace.flows.ids[0]
        ec.process(np.full(500, lone, dtype=np.uint64))
        ec.close_epoch()
        est1 = ec.estimate(1, np.array([lone], dtype=np.uint64))
        assert est1[0] == pytest.approx(500, rel=0.05)
        # A different flow in epoch 1 should be ~0.
        other = tiny_trace.flows.ids[1]
        est_other = ec.estimate(1, np.array([other], dtype=np.uint64), clip_negative=True)
        assert est_other[0] < 50

    def test_flow_series(self, tiny_trace):
        ec = EpochalCaesar(make_config(tiny_trace))
        fid = int(tiny_trace.flows.ids[0])
        for count in (100, 300, 200):
            ec.process(np.full(count, fid, dtype=np.uint64))
            ec.close_epoch()
        series = ec.flow_series(fid)
        assert series.shape == (3,)
        np.testing.assert_allclose(series, [100, 300, 200], rtol=0.1)

    def test_unclosed_epoch_query_raises(self, tiny_trace):
        ec = EpochalCaesar(make_config(tiny_trace))
        ec.process(tiny_trace.packets)
        with pytest.raises(QueryError):
            ec.epoch(0)

    def test_live_query_of_open_epoch(self, tiny_trace):
        ec = EpochalCaesar(make_config(tiny_trace))
        fid = int(tiny_trace.flows.ids[0])
        ec.process(np.full(400, fid, dtype=np.uint64))
        est = ec.estimate_current(np.array([fid], dtype=np.uint64))
        assert est[0] == pytest.approx(400, rel=0.1)

    def test_all_methods_supported(self, tiny_trace):
        ec = EpochalCaesar(make_config(tiny_trace))
        ec.process(tiny_trace.packets)
        ec.close_epoch()
        ids = tiny_trace.flows.ids[:10]
        for method in ("csm", "mlm", "median"):
            assert ec.estimate(0, ids, method).shape == (10,)
        with pytest.raises(ConfigError):
            ec.estimate(0, ids, "nope")
