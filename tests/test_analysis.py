"""Unit tests for metrics and table rendering."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    binned_errors,
    ci_coverage,
    evaluate,
    relative_errors,
    top_flow_are,
)
from repro.analysis.tables import format_series, format_table
from repro.errors import ConfigError


class TestRelativeErrors:
    def test_signed(self):
        rel = relative_errors(np.array([12.0, 8.0]), np.array([10, 10]))
        np.testing.assert_allclose(rel, [0.2, -0.2])

    def test_misaligned_rejected(self):
        with pytest.raises(ConfigError):
            relative_errors(np.array([1.0]), np.array([1, 2]))

    def test_zero_truth_rejected(self):
        with pytest.raises(ConfigError):
            relative_errors(np.array([1.0]), np.array([0]))


class TestBinnedErrors:
    def test_counts_conserved(self):
        truth = np.array([1, 1, 5, 50, 500, 5000])
        est = truth.astype(float)
        b = binned_errors(est, truth)
        assert b.count.sum() == 6

    def test_perfect_estimates_zero_error(self):
        truth = np.array([1, 10, 100])
        b = binned_errors(truth.astype(float), truth)
        valid = b.count > 0
        np.testing.assert_allclose(b.mean_abs_rel_error[valid], 0.0)
        assert b.overall_binned_are == 0.0

    def test_bin_assignment(self):
        truth = np.array([1, 2, 3])
        est = np.array([2.0, 2.0, 3.0])
        b = binned_errors(est, truth, bins_per_decade=1)
        # First bin is [1, 10): holds all three flows.
        assert b.count[0] == 3
        assert b.mean_truth[0] == pytest.approx(2.0)

    def test_empty_bins_are_nan(self):
        truth = np.array([1, 10000])
        est = truth.astype(float)
        b = binned_errors(est, truth, bins_per_decade=1)
        assert np.isnan(b.mean_abs_rel_error[(b.count == 0)]).all()

    def test_bins_per_decade_validation(self):
        with pytest.raises(ConfigError):
            binned_errors(np.array([1.0]), np.array([1]), bins_per_decade=0)


class TestEvaluate:
    def test_aggregates(self):
        truth = np.array([10, 10, 100])
        est = np.array([11.0, 9.0, 110.0])
        q = evaluate(est, truth)
        assert q.num_flows == 3
        assert q.per_flow_are == pytest.approx(0.1)
        assert q.packet_weighted_are == pytest.approx(
            (1 + 1 + 10) / 120
        )
        assert q.mean_signed_rel_error == pytest.approx(0.1 / 3)
        assert q.mean_signed_error_packets == pytest.approx(10 / 3)
        assert "ARE/flow" in q.summary()

    def test_unbiased_estimator_zero_packet_bias(self):
        rng = np.random.default_rng(0)
        truth = np.full(5000, 100)
        est = truth + rng.normal(0, 10, size=5000)
        q = evaluate(est, truth)
        assert abs(q.mean_signed_error_packets) < 1.0


class TestTopFlowAre:
    def test_selects_largest(self):
        truth = np.array([1, 2, 1000, 2000])
        est = np.array([100.0, 100.0, 1000.0, 2000.0])
        assert top_flow_are(est, truth, top=2) == 0.0

    def test_top_larger_than_population(self):
        truth = np.array([5, 10])
        est = np.array([5.0, 10.0])
        assert top_flow_are(est, truth, top=100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            top_flow_are(np.array([1.0]), np.array([1]), top=0)


class TestCiCoverage:
    def test_full_coverage(self):
        truth = np.array([5, 10])
        assert ci_coverage(np.array([0.0, 0.0]), np.array([100.0, 100.0]), truth) == 1.0

    def test_partial(self):
        truth = np.array([5, 10])
        cov = ci_coverage(np.array([0.0, 11.0]), np.array([6.0, 12.0]), truth)
        assert cov == 0.5

    def test_misaligned(self):
        with pytest.raises(ConfigError):
            ci_coverage(np.array([0.0]), np.array([1.0, 2.0]), np.array([1, 2]))


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [10, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_format_nan_as_dash(self):
        out = format_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_scientific_for_extremes(self):
        out = format_table(["x"], [[1e9], [1e-9]])
        assert "e+" in out and "e-" in out

    def test_format_series(self):
        out = format_series("n", ["a", "b"], [1, 2], [[10, 20], [30, 40]])
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "n"
        assert "10" in lines[2] and "30" in lines[2]
        assert "20" in lines[3] and "40" in lines[3]

    def test_format_series_validation(self):
        with pytest.raises(ValueError):
            format_series("n", ["a"], [1, 2], [[10, 20], [30, 40]])
        with pytest.raises(ValueError):
            format_series("n", ["a"], [1, 2], [[10]])

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out
