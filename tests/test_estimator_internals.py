"""Deeper estimator behaviour: monotonicity, orderings, internals."""

import numpy as np
import pytest

from repro.baselines.rcs import RCS, RCSConfig
from repro.core.csm import counter_median_estimate, csm_estimate
from repro.core.mlm import mlm_estimate


class TestCsmStructure:
    def test_linear_in_counters(self):
        w1 = np.array([[10, 20, 30]])
        w2 = np.array([[20, 40, 60]])
        e1 = csm_estimate(w1, 0, 100)
        e2 = csm_estimate(w2, 0, 100)
        assert e2[0] == pytest.approx(2 * e1[0])

    def test_noise_term_additive(self):
        w = np.array([[5, 5, 5]])
        for n in (0, 100, 10_000):
            assert csm_estimate(w, n, 50)[0] == pytest.approx(15 - n / 50)

    def test_median_between_min_and_max_decode(self):
        w = np.array([[10, 50, 90]])
        med = counter_median_estimate(w, 0, 100)[0]
        assert 3 * 10 <= med <= 3 * 90
        assert med == pytest.approx(150)  # 3 * median(10,50,90)


class TestMlmStructure:
    def test_monotone_in_counter_values(self):
        base = mlm_estimate(np.array([[10, 10, 10]]), 100, 50, entry_capacity=54)
        bigger = mlm_estimate(np.array([[20, 20, 20]]), 100, 50, entry_capacity=54)
        assert bigger[0] > base[0]

    def test_sensitive_to_imbalance_unlike_csm(self):
        balanced = np.array([[30, 30, 30]])
        skewed = np.array([[0, 0, 90]])
        csm_b = csm_estimate(balanced, 0, 100)[0]
        csm_s = csm_estimate(skewed, 0, 100)[0]
        assert csm_b == pytest.approx(csm_s)  # sum-only
        mlm_b = mlm_estimate(balanced, 0, 100, entry_capacity=54)[0]
        mlm_s = mlm_estimate(skewed, 0, 100, entry_capacity=54)[0]
        assert mlm_s > mlm_b  # sum-of-squares rewards concentration

    def test_entry_capacity_regularization_direction(self):
        # Larger y shrinks the (k-1)^2/y penalty -> estimate grows
        # toward the zero-noise sqrt form.
        w = np.array([[40, 40, 40]])
        small_y = mlm_estimate(w, 0, 100, entry_capacity=4)[0]
        large_y = mlm_estimate(w, 0, 100, entry_capacity=4000)[0]
        assert large_y > small_y


class TestRcsMlmInternals:
    @pytest.fixture(scope="class")
    def loaded_rcs(self, small_trace):
        rcs = RCS(RCSConfig(k=3, bank_size=700, seed=2))
        rcs.process(small_trace.packets)
        return rcs

    def test_more_iterations_converge(self, loaded_rcs, small_trace):
        ids = small_trace.flows.ids[:200]
        coarse = loaded_rcs.estimate(ids, "mlm", mlm_iterations=15)
        fine = loaded_rcs.estimate(ids, "mlm", mlm_iterations=60)
        finer = loaded_rcs.estimate(ids, "mlm", mlm_iterations=80)
        # Geometric convergence: 60 vs 80 indistinguishable, 15 close.
        np.testing.assert_allclose(fine, finer, atol=1e-3)
        np.testing.assert_allclose(coarse, fine, rtol=0.05, atol=1.0)

    def test_mlm_zero_counters_zero_estimate(self, loaded_rcs):
        ghost = np.array([2**63 + 12345], dtype=np.uint64)
        w = loaded_rcs.counter_values(ghost)
        if (w == 0).all():  # only meaningful if the ghost missed all mass
            assert loaded_rcs.estimate(ghost, "mlm")[0] == 0.0

    def test_csm_and_mlm_agree_on_elephants(self, loaded_rcs, small_trace):
        top = small_trace.flows.top(10)
        csm = loaded_rcs.estimate(top.ids, "csm")
        mlm = loaded_rcs.estimate(top.ids, "mlm")
        rel_gap = np.abs(csm - mlm) / np.maximum(csm, 1.0)
        assert rel_gap.mean() < 0.25


class TestDecoderOrderings:
    def test_median_robust_csm_fragile_under_injection(self, small_trace):
        """Inject one polluted counter per flow and compare decoders."""
        rng = np.random.default_rng(3)
        truth = np.array([100, 500, 2000])
        w = np.stack([np.full(3, t / 3.0) for t in truth])
        polluted = w.copy()
        polluted[np.arange(3), rng.integers(0, 3, 3)] += 50_000
        med_err = np.abs(counter_median_estimate(polluted, 0, 100) - truth)
        csm_err = np.abs(csm_estimate(polluted, 0, 100) - truth)
        assert (med_err < csm_err).all()
