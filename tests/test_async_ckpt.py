"""Async + incremental checkpointing tests.

The contracts under test (docs/resilience.md "Asynchronous and
incremental checkpoints"):

* a delta chain composed by ``load_checkpoint`` equals a full
  checkpoint of the same state bit for bit, on every engine;
* the background writer keeps at most one write in flight, propagates
  write failures to the producer, and joins cleanly;
* the runtime stays bit-identical to the offline ShardedCaesar under
  ``checkpoint_mode="async"`` and ``"delta"`` — including with workers
  SIGKILLed *during* a background write (``slow_ckpt_write`` fault) on
  both transports;
* broken chains (missing base, digest mismatch, loops) are rejected as
  ``TraceFormatError`` exactly like torn full checkpoints.
"""

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError, TraceFormatError
from repro.obs.registry import MetricsRegistry
from repro.resilience.async_ckpt import (
    CheckpointWriter,
    ShardCheckpointer,
    load_checkpoint,
    save_delta,
)
from repro.resilience.checkpoint import Checkpoint, write_npz
from repro.resilience.faults import FaultPlan, parse_fault_spec
from repro.runtime.client import StreamingRuntime
from repro.runtime.worker import WorkerSpec, _prune_checkpoints
from repro.sram.counterarray import BankedCounterArray

TRANSPORTS = ["queue", "shm"]


def make_config(engine="batched", seed=5, bank_size=512):
    return CaesarConfig(
        cache_entries=64,
        entry_capacity=16,
        k=3,
        bank_size=bank_size,
        seed=seed,
        engine=engine,
    )


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(17)
    return rng.zipf(1.25, 12_000).astype(np.uint64) % 2048


@pytest.fixture(scope="module")
def flows(stream):
    return np.unique(stream)


def offline_baseline(config, num_shards, packets):
    base = ShardedCaesar(config, num_shards)
    base.process(packets)
    base.finalize()
    return base


# -- dirty-stripe tracking ----------------------------------------------------


class TestDirtyTracking:
    def test_fresh_array_is_all_dirty(self):
        arr = BankedCounterArray(2, 1024, 100)
        assert arr.dirty_fraction() == 1.0
        assert len(arr.dirty_stripes()) == arr.num_stripes

    def test_scatter_add_marks_only_touched_stripes(self):
        arr = BankedCounterArray(2, 1024, 100)
        arr.clear_dirty()
        assert arr.dirty_fraction() == 0.0
        arr.add_at(np.array([0, 1, 700], dtype=np.int64), 1)
        np.testing.assert_array_equal(arr.dirty_stripes(), [0, 2])

    def test_add_one_and_flip_bit_mark(self):
        arr = BankedCounterArray(1, 1024, 100)
        arr.clear_dirty()
        arr.add_one(300)
        arr.flip_bit(900, 0)
        np.testing.assert_array_equal(arr.dirty_stripes(), [1, 3])

    def test_stick_marks(self):
        arr = BankedCounterArray(1, 1024, 100)
        arr.clear_dirty()
        arr.stick(np.array([512], dtype=np.int64), 7)
        np.testing.assert_array_equal(arr.dirty_stripes(), [2])

    def test_restore_and_reset_invalidate(self):
        arr = BankedCounterArray(1, 1024, 100)
        state = arr.export_state()
        arr.clear_dirty()
        arr.restore_state(state)
        assert arr.dirty_fraction() == 1.0
        arr.clear_dirty()
        arr.reset()
        assert arr.dirty_fraction() == 1.0

    def test_last_partial_stripe_is_coverable(self):
        # total_counters not a multiple of the stripe size: the final
        # stripe is short but must still round-trip through a delta.
        arr = BankedCounterArray(1, 300, 100)
        assert arr.num_stripes == 2
        arr.clear_dirty()
        arr.add_one(299)
        np.testing.assert_array_equal(arr.dirty_stripes(), [1])


# -- compression level --------------------------------------------------------


class TestCompressionLevel:
    @pytest.mark.parametrize("level", [0, 1, 6])
    def test_save_load_roundtrip(self, tmp_path, level):
        caesar = Caesar(make_config())
        caesar.process(np.arange(2000, dtype=np.uint64) % 256)
        ckpt = caesar.checkpoint()
        path = ckpt.save(tmp_path / f"ck{level}.npz", level=level)
        loaded = Checkpoint.load(path)
        assert loaded.digest == ckpt.digest

    def test_bad_level_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            write_npz(tmp_path / "x.npz", {"a": np.zeros(4)}, level=10)

    def test_store_only_is_bigger_but_equal(self, tmp_path):
        caesar = Caesar(make_config())
        caesar.process(np.arange(4000, dtype=np.uint64) % 512)
        ckpt = caesar.checkpoint()
        stored = ckpt.save(tmp_path / "stored.npz", level=0)
        packed = ckpt.save(tmp_path / "packed.npz", level=1)
        assert stored.stat().st_size > packed.stat().st_size
        assert Checkpoint.load(stored).digest == Checkpoint.load(packed).digest


# -- delta format -------------------------------------------------------------


def _build_chain(caesar, chunks, root):
    """Process chunks, writing a full then a chain of deltas; returns the
    paths in order plus the final full-state reference checkpoint."""
    paths = []
    prev_name = prev_digest = None
    ckpt = None
    for i, chunk in enumerate(chunks):
        caesar.process(chunk)
        ckpt = caesar.checkpoint()
        counters = caesar.counters
        if i == 0:
            path = Path(ckpt.save(root / f"ck_{i:010d}.npz"))
        else:
            path = save_delta(
                ckpt,
                root / f"ck_{i:010d}_delta.npz",
                prev_name=prev_name,
                prev_digest=prev_digest,
                stripe_ids=counters.dirty_stripes(),
                stripe_size=counters.stripe_size,
            )
        counters.clear_dirty()
        prev_name, prev_digest = path.name, ckpt.digest
        paths.append(path)
    return paths, ckpt


class TestDeltaFormat:
    def test_chain_composes_bit_identically(self, tmp_path, stream):
        caesar = Caesar(make_config())
        paths, ckpt = _build_chain(caesar, np.array_split(stream, 5), tmp_path)
        composed = load_checkpoint(paths[-1])
        assert composed.digest == ckpt.digest
        np.testing.assert_array_equal(
            composed.arrays["counter_values"], ckpt.arrays["counter_values"]
        )
        resumed = Caesar.resume(composed)
        np.testing.assert_array_equal(
            resumed.counters.values, caesar.counters.values
        )

    def test_missing_base_raises(self, tmp_path, stream):
        caesar = Caesar(make_config())
        paths, _ = _build_chain(caesar, np.array_split(stream, 3), tmp_path)
        paths[0].unlink()
        with pytest.raises(TraceFormatError):
            load_checkpoint(paths[-1])

    def test_wrong_prev_digest_raises(self, tmp_path, stream):
        caesar = Caesar(make_config())
        caesar.process(stream[:4000])
        base = caesar.checkpoint()
        base_path = base.save(tmp_path / "ck_0000000000.npz")
        caesar.counters.clear_dirty()
        caesar.process(stream[4000:8000])
        delta = caesar.checkpoint()
        path = save_delta(
            delta,
            tmp_path / "ck_0000000001_delta.npz",
            prev_name=base_path.name,
            prev_digest="0" * 64,  # lies about the base
            stripe_ids=caesar.counters.dirty_stripes(),
            stripe_size=caesar.counters.stripe_size,
        )
        with pytest.raises(TraceFormatError):
            load_checkpoint(path)

    def test_self_referencing_chain_is_bounded(self, tmp_path, stream):
        caesar = Caesar(make_config())
        caesar.process(stream[:2000])
        ckpt = caesar.checkpoint()
        caesar.counters.clear_dirty()
        caesar.process(stream[2000:4000])
        delta = caesar.checkpoint()
        path = save_delta(
            delta,
            tmp_path / "ck_0000000001_delta.npz",
            prev_name="ck_0000000001_delta.npz",  # itself: a loop
            prev_digest=ckpt.digest,
            stripe_ids=caesar.counters.dirty_stripes(),
            stripe_size=caesar.counters.stripe_size,
        )
        with pytest.raises(TraceFormatError):
            load_checkpoint(path)

    def test_full_file_loads_unchanged(self, tmp_path, stream):
        caesar = Caesar(make_config())
        caesar.process(stream[:3000])
        ckpt = caesar.checkpoint()
        path = ckpt.save(tmp_path / "ck.npz")
        assert load_checkpoint(path).digest == ckpt.digest


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_cuts=st.integers(min_value=2, max_value=5),
    engine=st.sampled_from(["batched", "runs", "scalar"]),
)
@settings(max_examples=10, deadline=None)
def test_property_delta_chain_equals_full(tiny_packets, seed, n_cuts, engine):
    """Any seed, any chain length, every engine: composing the delta
    chain recovers the exact state a full checkpoint would."""
    with tempfile.TemporaryDirectory() as d:
        root = Path(d)
        caesar = Caesar(make_config(engine=engine, seed=seed))
        chunks = np.array_split(tiny_packets, n_cuts)
        paths, ckpt = _build_chain(caesar, chunks, root)
        full = ckpt.save(root / "reference.npz")
        composed = load_checkpoint(paths[-1])
        reference = Checkpoint.load(full)
        assert composed.digest == reference.digest
        for name in composed.arrays:
            np.testing.assert_array_equal(
                composed.arrays[name], reference.arrays[name]
            )


@pytest.fixture(scope="module")
def tiny_packets():
    rng = np.random.default_rng(23)
    return rng.zipf(1.3, 4_000).astype(np.uint64) % 512


# -- the background writer ----------------------------------------------------


class TestCheckpointWriter:
    def test_rejects_overlapping_submits(self):
        w = CheckpointWriter()
        release = []

        def job():
            while not release:
                time.sleep(0.005)

        w.submit(job)
        with pytest.raises(RuntimeError):
            w.submit(lambda: None)
        release.append(True)
        w.close()

    def test_propagates_job_failure(self):
        w = CheckpointWriter()

        def boom():
            raise OSError("disk gone")

        w.submit(boom)
        with pytest.raises(OSError, match="disk gone"):
            w.wait()
        w.close()

    def test_wait_ticks_while_blocked(self):
        w = CheckpointWriter()
        ticks = []
        w.submit(lambda: time.sleep(0.2) or "done")
        results = w.wait(tick=lambda: ticks.append(1), poll_interval=0.02)
        assert results == ["done"]
        assert ticks  # at least one heartbeat fired during the wait
        w.close()

    def test_close_finishes_inflight_write(self, tmp_path):
        w = CheckpointWriter()
        target = tmp_path / "out.txt"

        def job():
            time.sleep(0.1)
            target.write_text("landed")
            return "ok"

        w.submit(job)
        results = w.close()
        assert results == ["ok"]
        assert target.read_text() == "landed"


class TestShardCheckpointer:
    def test_first_capture_is_full_then_delta(self, tmp_path, stream):
        # A small flow universe against large banks keeps the dirty
        # fraction well under the full_above threshold, so the policy
        # must actually emit deltas after the first full.
        caesar = Caesar(make_config(bank_size=65536))
        ckptr = ShardCheckpointer("delta")
        chunks = np.array_split(stream[:6000] % 64, 3)
        kinds = []
        for i, chunk in enumerate(chunks):
            caesar.process(chunk)
            done, _stall = ckptr.wait_idle()
            kinds.extend(d.kind for d in done)
            ckptr.capture(
                caesar,
                i,
                full=tmp_path / f"ck_{i:010d}.npz",
                delta=tmp_path / f"ck_{i:010d}_delta.npz",
            )
        kinds.extend(d.kind for d in ckptr.close())
        assert kinds[0] == "full"
        assert "delta" in kinds[1:]
        # Every file recovers to a verified checkpoint, and each delta
        # serialized a small fraction of the counter space (the format's
        # size win; raw bytes are unreliable here because zero-heavy
        # full banks compress to almost nothing anyway).
        total = caesar.counters.total_counters
        for f in sorted(tmp_path.glob("ck_*.npz")):
            load_checkpoint(f)
            if f.name.endswith("_delta.npz"):
                with np.load(f) as data:
                    assert len(data["delta_payload"]) < total / 2, f.name

    def test_dense_updates_fall_back_to_full(self, tmp_path):
        # Tiny bank: every chunk dirties most stripes, so the delta
        # policy must keep writing fulls.
        caesar = Caesar(make_config(bank_size=512))
        rng = np.random.default_rng(3)
        ckptr = ShardCheckpointer("delta")
        for i in range(3):
            caesar.process(rng.integers(0, 2**40, 3000).astype(np.uint64))
            ckptr.wait_idle()
            ckptr.capture(
                caesar,
                i,
                full=tmp_path / f"ck_{i:010d}.npz",
                delta=tmp_path / f"ck_{i:010d}_delta.npz",
            )
        done = ckptr.close()
        assert not list(tmp_path.glob("*_delta.npz"))
        assert all(d.kind == "full" for d in done)


# -- pruning ------------------------------------------------------------------


class TestChainAwarePrune:
    def test_keeps_every_surviving_deltas_chain(self, tmp_path):
        names = [
            "ck_0000000001.npz",
            "ck_0000000003_delta.npz",
            "ck_0000000005.npz",
            "ck_0000000007_delta.npz",
            "ck_0000000009.npz",
            "ck_0000000011_delta.npz",
        ]
        for n in names:
            (tmp_path / n).touch()
        _prune_checkpoints(tmp_path, keep=2)
        left = sorted(p.name for p in tmp_path.glob("ck_*.npz"))
        # Cutoff is the 2nd-newest full (seq 5): everything at or past
        # it survives, including the deltas chained onto those fulls.
        assert left == names[2:]

    def test_no_prune_below_keep(self, tmp_path):
        for n in ("ck_0000000001.npz", "ck_0000000003_delta.npz"):
            (tmp_path / n).touch()
        _prune_checkpoints(tmp_path, keep=2)
        assert len(list(tmp_path.glob("ck_*.npz"))) == 2


# -- fault plumbing -----------------------------------------------------------


class TestSlowCkptFault:
    def test_parse_alias(self):
        plan = parse_fault_spec("slow_ckpt=0.25")
        assert plan.slow_ckpt_write == 0.25
        # Not a chunk-path fault: the checkpointer consumes it directly.
        assert not plan.runtime_enabled
        assert not plan.enabled

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(slow_ckpt_write=-0.1)


# -- runtime integration ------------------------------------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("mode", ["async", "delta"])
class TestRuntimeModes:
    def test_drain_matches_offline(self, tmp_path, stream, flows, mode, transport):
        config = make_config()
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport=transport,
            checkpoint_every=2,
            checkpoint_mode=mode,
        ) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            result = rt.drain()
            assert result.shard_digests == tuple(
                s.checkpoint().digest for s in base.shards
            )
            np.testing.assert_array_equal(
                rt.query(flows), base.estimate(flows, "csm", clip_negative=True)
            )

    def test_sigkill_during_background_write(
        self, tmp_path, stream, flows, mode, transport
    ):
        """Kill a worker while its writer thread is mid-write (the
        slow_ckpt_write fault holds the .tmp_ stage open): recovery must
        still be bit-identical, and the torn temp swept."""
        config = make_config()
        base = offline_baseline(config, 2, stream)
        chunks = np.array_split(stream, 12)
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport=transport,
            checkpoint_every=2,
            checkpoint_mode=mode,
            worker_faults={1: FaultPlan(slow_ckpt_write=0.6)},
        ) as rt:
            for i, chunk in enumerate(chunks):
                rt.ingest(chunk)
                if i == 5:
                    # seq 5 just triggered a capture; give the worker a
                    # beat to enter the (slowed) background write, then
                    # kill it mid-write.
                    time.sleep(0.25)
                    rt.kill_worker(1)
            result = rt.drain()
            assert result.restarts == 1
            assert result.num_packets == len(stream)
            assert result.shard_digests == tuple(
                s.checkpoint().digest for s in base.shards
            )
        # The sweeps collected any torn async write.
        assert not list(Path(tmp_path).glob("shard*/.tmp_*"))


class TestRuntimeObservability:
    def test_delta_metrics_and_ages_exported(self, tmp_path, stream):
        # Large banks + few flows => low dirty fraction => real deltas.
        config = make_config(bank_size=65536)
        registry = MetricsRegistry()
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport="queue",
            checkpoint_every=2,
            checkpoint_mode="delta",
            registry=registry,
        ) as rt:
            rt.ingest_stream(stream % 64, chunk_packets=1000)
            result = rt.drain()
            ages = rt.checkpoint_ages()
        assert result.restarts == 0
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters.get("checkpoint.writes", 0) > 0
        assert counters.get("checkpoint.deltas", 0) > 0
        assert counters.get("checkpoint.bytes", 0) > 0
        assert ages and all(age >= 0.0 for age in ages.values())
        gauges = snap["gauges"]
        assert "runtime.shard0.last_checkpoint_seq" in gauges
        assert "runtime.shard0.checkpoint_age_seconds" in gauges

    def test_worker_spec_defaults_async(self):
        spec = WorkerSpec(shard_id=0, config=make_config(), state_dir="x")
        assert spec.checkpoint_mode == "async"
        assert spec.checkpoint_level == 1

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            StreamingRuntime(
                make_config(), 1, state_dir=tmp_path, checkpoint_mode="fancy"
            )
