"""Unit tests for Counter Braids and Count-Min."""

import numpy as np
import pytest

from repro.baselines.counter_braids import CounterBraids, CounterBraidsConfig
from repro.baselines.countmin import CountMin, CountMinConfig
from repro.errors import ConfigError, QueryError


class TestCounterBraids:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CounterBraidsConfig(d=1)
        with pytest.raises(ConfigError):
            CounterBraidsConfig(bank_size=0)

    def test_mass_is_d_times_packets(self, tiny_trace):
        cb = CounterBraids(CounterBraidsConfig(d=3, bank_size=512))
        cb.process(tiny_trace.packets)
        assert cb.counters.total_mass == 3 * tiny_trace.num_packets

    def test_sparse_decoding_exact(self):
        """With light counter load, message passing recovers exactly."""
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 2**63, size=40, dtype=np.uint64)
        sizes = rng.integers(1, 100, size=40)
        packets = np.repeat(ids, sizes)
        cb = CounterBraids(CounterBraidsConfig(d=3, bank_size=400))
        cb.process(packets)
        est = cb.decode(ids)
        np.testing.assert_allclose(est, sizes, atol=0.5)

    def test_decode_is_upper_bound_at_load(self, small_trace):
        cb = CounterBraids(CounterBraidsConfig(d=3, bank_size=small_trace.num_flows))
        cb.process(small_trace.packets)
        est = cb.decode(small_trace.flows.ids)
        # Counters only over-count: estimates never fall below zero and
        # the initial min-counter bound only shrinks toward truth.
        assert (est >= 0).all()

    def test_estimate_requires_data(self, tiny_trace):
        cb = CounterBraids(CounterBraidsConfig(d=3, bank_size=64))
        with pytest.raises(QueryError):
            cb.estimate(tiny_trace.flows.ids)

    def test_decode_empty_query(self, tiny_trace):
        cb = CounterBraids(CounterBraidsConfig(d=3, bank_size=64))
        cb.process(tiny_trace.packets)
        assert cb.decode(np.array([], dtype=np.uint64)).shape == (0,)


class TestCountMin:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CountMinConfig(depth=0)
        with pytest.raises(ConfigError):
            CountMinConfig(width=0)

    def test_never_underestimates(self, small_trace):
        cm = CountMin(CountMinConfig(depth=3, width=small_trace.num_flows // 2))
        cm.process(small_trace.packets)
        est = cm.estimate(small_trace.flows.ids)
        assert (est >= small_trace.flows.sizes).all()

    def test_conservative_update_tighter(self, tiny_trace):
        plain = CountMin(CountMinConfig(depth=3, width=128, conservative=False))
        cons = CountMin(CountMinConfig(depth=3, width=128, conservative=True))
        plain.process(tiny_trace.packets)
        cons.process(tiny_trace.packets)
        e_plain = plain.estimate(tiny_trace.flows.ids)
        e_cons = cons.estimate(tiny_trace.flows.ids)
        assert (e_cons <= e_plain + 1e-9).all()
        assert (e_cons >= tiny_trace.flows.sizes).all()  # CU is still an upper bound

    def test_exact_when_no_collisions(self):
        ids = np.array([1, 2, 3], dtype=np.uint64)
        packets = np.repeat(ids, [5, 7, 9])
        cm = CountMin(CountMinConfig(depth=3, width=4096))
        cm.process(packets)
        np.testing.assert_allclose(cm.estimate(ids), [5, 7, 9])
