"""Second property-test suite: metrics, streams, trees, event sim."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import evaluate, relative_errors, top_flow_are
from repro.baselines.counter_tree import CounterTree, CounterTreeConfig
from repro.baselines.sampling import SampledCounter
from repro.memmodel.eventsim import simulate
from repro.traffic.distributions import BoundedZipf
from repro.traffic.flows import FlowSet
from repro.traffic.packets import bursty_stream, uniform_stream


# -- metrics invariants ------------------------------------------------------


sizes_strategy = st.lists(st.integers(min_value=1, max_value=10_000), min_size=2, max_size=60)


@given(sizes_strategy)
def test_perfect_estimates_have_zero_error(sizes):
    truth = np.array(sizes, dtype=np.int64)
    q = evaluate(truth.astype(np.float64), truth)
    assert q.per_flow_are == 0.0
    assert q.packet_weighted_are == 0.0
    assert q.mean_signed_error_packets == 0.0


@given(sizes_strategy, st.floats(min_value=0.1, max_value=5.0))
def test_uniform_scaling_gives_uniform_relative_error(sizes, factor):
    truth = np.array(sizes, dtype=np.int64)
    est = truth * factor
    rel = relative_errors(est, truth)
    np.testing.assert_allclose(rel, factor - 1.0, rtol=1e-9)
    q = evaluate(est, truth)
    np.testing.assert_allclose(q.per_flow_are, abs(factor - 1.0), rtol=1e-6)
    np.testing.assert_allclose(q.packet_weighted_are, abs(factor - 1.0), rtol=1e-6)


@given(sizes_strategy, st.integers(min_value=0, max_value=2**31))
def test_metrics_invariant_under_permutation(sizes, seed):
    truth = np.array(sizes, dtype=np.int64)
    rng = np.random.default_rng(seed)
    est = truth + rng.normal(0, 1, size=len(truth))
    perm = rng.permutation(len(truth))
    a = evaluate(est, truth)
    b = evaluate(est[perm], truth[perm])
    # Equality up to float summation order.
    np.testing.assert_allclose(a.per_flow_are, b.per_flow_are, rtol=1e-12)
    np.testing.assert_allclose(a.packet_weighted_are, b.packet_weighted_are, rtol=1e-12)
    # top_flow_are is permutation-invariant only when sizes are
    # distinct (argsort tie-breaking picks different tied flows);
    # compare on the deduplicated-size subset.
    if len(np.unique(truth)) == len(truth):
        np.testing.assert_allclose(
            top_flow_are(est, truth, 5),
            top_flow_are(est[perm], truth[perm], 5),
            rtol=1e-12,
        )


# -- stream constructions -------------------------------------------------------


@given(
    st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_bursty_stream_conserves_any_flowset(sizes, burst, seed):
    rng = np.random.default_rng(seed)
    ids = rng.choice(2**60, size=len(sizes), replace=False).astype(np.uint64)
    flows = FlowSet(ids=ids, sizes=np.array(sizes, dtype=np.int64))
    stream = bursty_stream(flows, burst_length=burst, seed=seed)
    uniq, counts = np.unique(stream, return_counts=True)
    order = np.argsort(flows.ids)
    np.testing.assert_array_equal(uniq, flows.ids[order])
    np.testing.assert_array_equal(counts, flows.sizes[order])


@given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_uniform_stream_is_permutation(num_flows, seed):
    flows = FlowSet.generate(num_flows, BoundedZipf(1.5, 50), seed=seed)
    stream = uniform_stream(flows, seed=seed)
    assert len(stream) == flows.num_packets


# -- counter tree conservation -----------------------------------------------------


@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=25),
    st.integers(min_value=2, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_counter_tree_conserves_mass(sizes, leaf_bits):
    rng = np.random.default_rng(42)
    ids = rng.choice(2**60, size=len(sizes), replace=False).astype(np.uint64)
    packets = np.repeat(ids, sizes)
    tree = CounterTree(CounterTreeConfig(num_leaves=64, leaf_bits=leaf_bits))
    tree.process(packets)
    assert tree.total_mass == int(np.sum(sizes))


# -- sampling unbiasedness shape ------------------------------------------------------


@given(st.floats(min_value=0.05, max_value=1.0), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_sampling_estimate_bounded_by_inverse_rate(rate, seed):
    sc = SampledCounter(rate, seed=seed)
    packets = np.full(100, 3, dtype=np.uint64)
    sc.process(packets)
    est = sc.estimate(np.array([3], dtype=np.uint64))[0]
    assert 0.0 <= est <= 100 / rate + 1e-9


# -- event sim monotonicity --------------------------------------------------------------


@given(st.integers(min_value=100, max_value=3000))
@settings(max_examples=20, deadline=None)
def test_eventsim_ingress_monotone_in_n(n):
    kwargs = dict(interarrival_ns=1.0, front_ns=0.5, items_per_packet=1.0,
                  back_ns=5.0, fifo_depth=200, stall=True)
    a = simulate(n, **kwargs)
    b = simulate(n + 500, **kwargs)
    assert b.ingress_ns >= a.ingress_ns
    assert b.generated_items >= a.generated_items
