"""Unit tests for eviction-value splitting."""

import numpy as np
import pytest

from repro.core.split import split_evenly, split_value, split_values_batch
from repro.errors import ConfigError


class TestSplitValue:
    def test_sums_to_value(self, rng):
        for value in (0, 1, 5, 54, 1000):
            parts = split_value(value, 3, rng)
            assert parts.sum() == value

    def test_aliquot_floor(self, rng):
        parts = split_value(10, 3, rng)  # p=3, q=1
        assert parts.min() >= 3
        assert parts.max() <= 3 + 1  # one extra unit max... q=1

    def test_divisible_case_deterministic(self, rng):
        parts = split_value(9, 3, rng)
        assert parts.tolist() == [3, 3, 3]

    def test_k1_gets_everything(self, rng):
        assert split_value(42, 1, rng).tolist() == [42]

    def test_remainder_marginal_binomial(self, rng):
        # Section 4.2: each remainder unit lands uniformly; counter 0's
        # share of q=2 units is Binomial(2, 1/3) with mean 2/3.
        samples = np.array([split_value(5, 3, rng)[0] for _ in range(4000)])
        # p=1 plus Binomial(2, 1/3): mean 1 + 2/3
        assert abs(samples.mean() - (1 + 2 / 3)) < 0.05

    def test_rejects_negative(self, rng):
        with pytest.raises(ConfigError):
            split_value(-1, 3, rng)
        with pytest.raises(ConfigError):
            split_value(5, 0, rng)


class TestSplitEvenly:
    def test_sums_and_shape(self):
        parts = split_evenly(11, 3)  # p=3, q=2
        assert parts.tolist() == [4, 4, 3]

    def test_divisible(self):
        assert split_evenly(6, 3).tolist() == [2, 2, 2]

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigError):
            split_evenly(-1, 3)
        with pytest.raises(ConfigError):
            split_evenly(3, 0)


class TestSplitValuesBatch:
    def test_rows_sum_to_values(self, rng):
        values = np.array([0, 1, 7, 54, 100, 3], dtype=np.int64)
        out = split_values_batch(values, 3, rng)
        assert out.shape == (6, 3)
        np.testing.assert_array_equal(out.sum(axis=1), values)

    def test_aliquot_bounds(self, rng):
        values = np.full(100, 10, dtype=np.int64)  # p=3, q=1
        out = split_values_batch(values, 3, rng)
        assert out.min() >= 3 and out.max() <= 4

    def test_matches_multinomial_marginals(self, rng):
        values = np.full(6000, 5, dtype=np.int64)  # p=1, q=2
        out = split_values_batch(values, 3, rng)
        # Every column mean should be 5/3.
        np.testing.assert_allclose(out.mean(axis=0), 5 / 3, atol=0.05)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ConfigError):
            split_values_batch(np.array([-1]), 3, rng)
        with pytest.raises(ConfigError):
            split_values_batch(np.array([[1, 2]]), 3, rng)
        with pytest.raises(ConfigError):
            split_values_batch(np.array([1]), 0, rng)
