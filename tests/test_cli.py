"""CLI tests: subcommands, backwards compatibility, export."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def tiny_trace_path(tmp_path):
    path = str(tmp_path / "t.npz")
    assert main(["trace", "--scale", "0.003", "--seed", "2", "--out", path]) == 0
    return path


class TestParser:
    def test_run_subcommand(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.command == "run"
        assert args.experiment == "fig3"
        assert args.scale is None

    def test_all_is_valid(self):
        assert build_parser().parse_args(["run", "all"]).experiment == "all"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_scale_and_seed(self):
        args = build_parser().parse_args(
            ["run", "fig4", "--scale", "0.01", "--seed", "7"]
        )
        assert args.scale == 0.01
        assert args.seed == 7

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_measure_args(self):
        args = build_parser().parse_args(
            ["measure", "--trace", "t.npz", "--sram-kb", "4", "--cache-kb", "2"]
        )
        assert args.sram_kb == 4.0
        assert args.method == "csm"


class TestMain:
    def test_bare_experiment_backwards_compatible(self, capsys):
        assert main(["fig3", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "fraction_flows_below_mean" in out

    def test_run_fig8(self, capsys):
        assert main(["run", "fig8", "--scale", "0.005"]) == 0
        assert "Processing time" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig8", "headline", "theory"):
            assert name in out

    def test_trace_then_measure(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.npz")
        assert main(["trace", "--scale", "0.003", "--seed", "2", "--out", trace_path]) == 0
        assert (
            main(
                [
                    "measure",
                    "--trace",
                    trace_path,
                    "--sram-kb",
                    "2",
                    "--cache-kb",
                    "1",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "top 3 flows" in out
        assert "ARE/flow" in out

    def test_run_with_export(self, capsys, tmp_path):
        export = str(tmp_path / "artifacts")
        assert main(["run", "fig3", "--scale", "0.005", "--export-dir", export]) == 0
        assert (tmp_path / "artifacts" / "fig3_measured.csv").exists()
        assert (tmp_path / "artifacts" / "fig3_report.txt").exists()

    def test_report_command(self, capsys, tmp_path):
        out = str(tmp_path / "REPORT.md")
        assert main(["report", "--scale", "0.003", "--out", out]) == 0
        text = (tmp_path / "REPORT.md").read_text()
        assert "# CAESAR reproduction report" in text
        for name in ("fig3", "fig8", "headline"):
            assert f"## {name}:" in text

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2


class TestResilienceCli:
    """--inject / --checkpoint-every / --resume-from and error exits."""

    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.npz")
        assert main(["trace", "--scale", "0.003", "--seed", "2", "--out", path]) == 0
        return path

    def test_repro_error_exits_2_with_one_line(self, capsys, trace_path):
        """Missing budgets is a ReproError: exit 2, message on stderr,
        no traceback."""
        assert main(["measure", "--trace", trace_path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_inject_spec_exits_2(self, capsys, trace_path):
        args = ["measure", "--trace", trace_path, "--sram-kb", "2", "--cache-kb", "1"]
        assert main([*args, "--inject", "bogus=1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_every_requires_out(self, capsys, trace_path):
        args = ["measure", "--trace", trace_path, "--sram-kb", "2", "--cache-kb", "1"]
        assert main([*args, "--checkpoint-every", "1000"]) == 2
        assert "--checkpoint-out" in capsys.readouterr().err

    def test_checkpoint_then_resume_matches(self, capsys, tmp_path, trace_path):
        """The full kill-and-resume cycle through the CLI: the resumed
        run prints the same accuracy summary as the checkpointing run."""
        ck = str(tmp_path / "ck.npz")
        base = ["measure", "--trace", trace_path, "--top", "3"]
        assert (
            main(
                [
                    *base,
                    "--sram-kb",
                    "2",
                    "--cache-kb",
                    "1",
                    "--checkpoint-every",
                    "30000",
                    "--checkpoint-out",
                    ck,
                ]
            )
            == 0
        )
        full = capsys.readouterr().out
        assert main([*base, "--resume-from", ck]) == 0
        resumed = capsys.readouterr().out
        assert "resumed" in resumed
        # Identical estimates: same summary lines and same top flows.
        tail = full.split("top 3 flows")[1]
        assert tail == resumed.split("top 3 flows")[1]

    def test_inject_runs_and_reports(self, capsys, trace_path):
        assert (
            main(
                [
                    "measure",
                    "--trace",
                    trace_path,
                    "--sram-kb",
                    "2",
                    "--cache-kb",
                    "1",
                    "--inject",
                    "drop=0.1,seed=5",
                    "--top",
                    "2",
                ]
            )
            == 0
        )
        assert "top 2 flows" in capsys.readouterr().out


class TestServeCli:
    """The `serve` subcommand: streaming runtime through the CLI."""

    def test_parser(self):
        args = build_parser().parse_args(
            ["serve", "--trace", "t.npz", "--sram-kb", "2", "--cache-kb", "1"]
        )
        assert args.workers == 2
        assert args.backpressure == "block"
        assert not args.verify_offline

    def test_serve_streams_and_verifies(self, capsys, tiny_trace_path):
        """`serve` end to end: chaos-kill one worker mid-stream, live
        queries, then prove the result bit-identical to the offline
        single-process run."""
        assert (
            main(
                [
                    "serve",
                    "--trace",
                    tiny_trace_path,
                    "--workers",
                    "2",
                    "--sram-kb",
                    "2",
                    "--cache-kb",
                    "1",
                    "--chunk-packets",
                    "4096",
                    "--query-every",
                    "4",
                    "--chaos-kill",
                    "0:3",
                    "--verify-offline",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worker restarts: 1" in out
        assert "live estimates" in out
        assert "offline verification: bit-identical" in out

    def test_serve_bad_chaos_spec_exits_2(self, capsys, tiny_trace_path):
        base = [
            "serve",
            "--trace",
            tiny_trace_path,
            "--sram-kb",
            "2",
            "--cache-kb",
            "1",
        ]
        assert main([*base, "--chaos-kill", "nope"]) == 2
        assert "SHARD:CHUNK" in capsys.readouterr().err
        assert main([*base, "--chaos-kill", "9:0"]) == 2
        assert "out of range" in capsys.readouterr().err


class TestConsoleEntryPoints:
    """The installed `repro` / `caesar-repro` commands."""

    def test_pyproject_declares_both_scripts(self):
        import tomllib
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        scripts = tomllib.loads(pyproject.read_text())["project"]["scripts"]
        assert scripts["repro"] == "repro.cli:main"
        assert scripts["caesar-repro"] == "repro.cli:main"

    def test_module_entry_point_runs(self):
        """`python -m repro list` — the execution path both console
        scripts resolve to — works from a clean interpreter."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "fig3" in proc.stdout

    def test_installed_binary_if_present(self):
        """When the package is pip-installed, the `repro` binary itself
        must answer; skipped in source-only environments."""
        import shutil
        import subprocess

        binary = shutil.which("repro")
        if binary is None:
            pytest.skip("package not installed; console script absent")
        proc = subprocess.run(
            [binary, "list"], capture_output=True, text=True, timeout=120
        )
        assert proc.returncode == 0
        assert "fig3" in proc.stdout
