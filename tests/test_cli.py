"""CLI tests: subcommands, backwards compatibility, export."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_subcommand(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.command == "run"
        assert args.experiment == "fig3"
        assert args.scale is None

    def test_all_is_valid(self):
        assert build_parser().parse_args(["run", "all"]).experiment == "all"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_scale_and_seed(self):
        args = build_parser().parse_args(
            ["run", "fig4", "--scale", "0.01", "--seed", "7"]
        )
        assert args.scale == 0.01
        assert args.seed == 7

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_measure_args(self):
        args = build_parser().parse_args(
            ["measure", "--trace", "t.npz", "--sram-kb", "4", "--cache-kb", "2"]
        )
        assert args.sram_kb == 4.0
        assert args.method == "csm"


class TestMain:
    def test_bare_experiment_backwards_compatible(self, capsys):
        assert main(["fig3", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "fraction_flows_below_mean" in out

    def test_run_fig8(self, capsys):
        assert main(["run", "fig8", "--scale", "0.005"]) == 0
        assert "Processing time" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig8", "headline", "theory"):
            assert name in out

    def test_trace_then_measure(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.npz")
        assert main(["trace", "--scale", "0.003", "--seed", "2", "--out", trace_path]) == 0
        assert (
            main(
                [
                    "measure",
                    "--trace",
                    trace_path,
                    "--sram-kb",
                    "2",
                    "--cache-kb",
                    "1",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "top 3 flows" in out
        assert "ARE/flow" in out

    def test_run_with_export(self, capsys, tmp_path):
        export = str(tmp_path / "artifacts")
        assert main(["run", "fig3", "--scale", "0.005", "--export-dir", export]) == 0
        assert (tmp_path / "artifacts" / "fig3_measured.csv").exists()
        assert (tmp_path / "artifacts" / "fig3_report.txt").exists()

    def test_report_command(self, capsys, tmp_path):
        out = str(tmp_path / "REPORT.md")
        assert main(["report", "--scale", "0.003", "--out", out]) == 0
        text = (tmp_path / "REPORT.md").read_text()
        assert "# CAESAR reproduction report" in text
        for name in ("fig3", "fig8", "headline"):
            assert f"## {name}:" in text

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
