"""Experiment-harness tests: every registered experiment runs on a tiny
setup and reproduces the paper's qualitative findings."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_experiment, list_experiments, run_experiment
from repro.experiments.trace_setup import ExperimentSetup, configured_scale, standard_setup
from repro.traffic.trace import default_paper_trace


@pytest.fixture(scope="module")
def setup() -> ExperimentSetup:
    return ExperimentSetup(
        trace=default_paper_trace(scale=0.01, seed=5), scale=0.01, seed=5
    )


class TestRegistry:
    def test_all_figures_registered(self):
        names = list_experiments()
        for fig in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert fig in names
        assert "headline" in names
        assert "ablations" in names

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")


class TestTraceSetup:
    def test_budgets_scale(self, setup):
        assert setup.sram_kb_main == pytest.approx(91.55 * 0.01)
        assert setup.sram_kb_case == pytest.approx(183.11 * 0.01)
        assert setup.cache_kb == pytest.approx(97.66 * 0.01)

    def test_entry_capacity_rule(self, setup):
        y = setup.entry_capacity
        assert y == int(2 * setup.trace.num_packets / setup.trace.num_flows)

    def test_standard_setup_cached(self):
        a = standard_setup(scale=0.005, seed=3)
        b = standard_setup(scale=0.005, seed=3)
        assert a is b

    def test_configured_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert configured_scale() == 0.25
        monkeypatch.setenv("REPRO_SCALE", "garbage")
        with pytest.raises(ConfigError):
            configured_scale()
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ConfigError):
            configured_scale()

    def test_describe(self, setup):
        assert "n=" in setup.describe() and "k=3" in setup.describe()


class TestFig3(object):
    def test_heavy_tail_reproduced(self, setup):
        r = run_experiment("fig3", setup)
        assert isinstance(r, ExperimentResult)
        assert r.measured["fraction_flows_below_mean"] > 0.88
        assert r.measured["fraction_flows_below_y"] > 0.9
        assert r.measured["tail_exponent_loglog_slope"] < -0.8
        assert r.render()  # renders without error


class TestFig4(object):
    def test_caesar_findings(self, setup):
        r = run_experiment("fig4", setup)
        # CSM ~ MLM and LRU ~ random (paper Section 6.3.1).
        assert r.measured["lru_vs_random_are_gap"] < 0.3
        # CSM near-unbiased in packet terms. The sample mean over
        # counter-correlated flows is itself noisy at tiny scale, so
        # the bound is loose; the tight aggregate-unbiasedness check
        # lives in test_core_caesar.
        assert abs(r.measured["csm_bias_over_mu"]) < 2.0
        # Elephants tracked accurately at the paper budget.
        assert r.measured["csm_are_top"] < 0.5
        # y = 2 mu makes overflow evictions a small minority of misses.
        assert r.measured["cache_hit_rate"] > 0.5


class TestFig5(object):
    def test_case_collapse(self, setup):
        r = run_experiment("fig5", setup)
        assert r.measured["small_budget_frac_estimated_zero"] > 0.6
        assert (
            r.measured["big_budget_frac_within_30pct"]
            > r.measured["small_budget_frac_within_30pct"]
        )
        assert r.measured["big_budget_bits_per_counter"] > r.measured[
            "small_budget_bits_per_counter"
        ]


class TestFig6(object):
    def test_rcs_matches_caesar_lossless(self, setup):
        r = run_experiment("fig6", setup)
        # "quite similar": same order of magnitude of binned ARE.
        gap = r.measured["rcs_vs_caesar_are_gap"]
        assert gap < 0.5 * max(
            r.measured["rcs_csm_are_bin"], r.measured["caesar_csm_are_bin"]
        )


class TestFig7(object):
    def test_loss_rates_dominate_large_flows(self, setup):
        r = run_experiment("fig7", setup)
        assert r.measured["are_loss_2_3_large_flows"] == pytest.approx(2 / 3, abs=0.1)
        assert r.measured["are_loss_9_10_large_flows"] == pytest.approx(0.9, abs=0.05)
        # More loss, more error (paper ordering).
        assert (
            r.measured["are_loss_9_10_large_flows"]
            > r.measured["are_loss_2_3_large_flows"]
        )


class TestFig8(object):
    def test_timing_findings(self, setup):
        r = run_experiment("fig8", setup)
        assert r.measured["max_speedup_vs_rcs"] > 0.8  # paper: up to 90 %
        assert r.measured["mean_speedup_vs_case"] > 0.5  # paper: 74.8 %
        assert r.measured["rcs_line_rate_loss"] == pytest.approx(0.9)
        assert r.measured["fulltrace_speedup_vs_case"] > 0.0
        assert r.measured["fulltrace_speedup_vs_rcs"] > 0.0


class TestHeadline(object):
    def test_orderings(self, setup):
        r = run_experiment("headline", setup)
        # CAESAR beats lossy RCS on elephant accuracy at the same SRAM.
        assert r.measured["caesar_csm_are_top"] < r.measured["rcs_lossy_9_10_are"]
        assert r.measured["caesar_csm_are_top"] < r.measured["rcs_lossy_2_3_are"]
        assert r.measured["mean_speedup_vs_case"] > 0.0
        assert r.measured["mean_speedup_vs_rcs"] > 0.0


class TestAblations(object):
    def test_runs_and_reports(self, setup):
        r = run_experiment("ablations", setup)
        assert r.measured["overflow_frac_at_2mu"] < 0.6
        assert r.measured["lru_random_gap"] < 1.0
        assert len(r.tables) == 5


class TestExtensions(object):
    def test_runs(self, setup):
        r = run_experiment("extensions", setup)
        assert "caesar_are_packet" in r.measured
        assert r.tables


class TestTheoryValidation(object):
    def test_closed_forms_validated(self, setup):
        r = run_experiment("theory", setup)
        assert r.measured["eviction_count_rel_err"] < 0.05
        assert r.measured["portion_mean_rel_err"] < 0.02
        # Mechanism variance matches the exact form, and the paper's
        # published Eq. 14 is ~k times it.
        assert r.measured["portion_var_vs_exact"] == pytest.approx(1.0, abs=0.25)
        assert r.measured["portion_var_vs_paper"] == pytest.approx(1 / 3, abs=0.1)
        # The noise-only CSM variance model lands within ~35 %.
        assert r.measured["csm_var_ratio_noise_model"] == pytest.approx(1.0, abs=0.35)


class TestVolume(object):
    def test_byte_path(self, setup):
        r = run_experiment("volume", setup)
        assert r.measured["volume_mass_conserved"] == 1.0
        assert r.measured["volume_size_correlation"] > 0.99
        assert r.measured["mean_bytes_per_packet"] == pytest.approx(340.3, abs=8)
        # Volume accuracy comparable to size accuracy (same mechanism).
        assert r.measured["volume_are_top"] < r.measured["size_are_top"] + 0.2


class TestEventsimValidation(object):
    def test_analytic_model_validated(self, setup):
        r = run_experiment("eventsim", setup)
        assert r.measured["worst_ingress_rel_diff"] < 0.05
        assert r.measured["loss_3x_event"] == pytest.approx(2 / 3, abs=0.03)
        assert r.measured["loss_10x_event"] == pytest.approx(0.9, abs=0.03)
        assert r.measured["caesar_ingress_per_packet"] == pytest.approx(1.0, rel=0.05)


class TestArrivalPatterns(object):
    def test_order_independence_of_accuracy(self, setup):
        r = run_experiment("arrivals", setup)
        assert r.measured["accuracy_spread_across_patterns"] < 0.05
        assert r.measured["hit_rate_bursty"] > r.measured["hit_rate_uniform"]
        assert r.measured["loss_bursty"] <= r.measured["loss_uniform"]


class TestScaling(object):
    def test_scale_invariance(self, setup):
        from repro.experiments import scaling

        r = scaling.run(setup, scales=(0.005, 0.01))
        assert r.measured["top_are_spread_across_scales"] < 0.5
        # At every scale elephants remain well-tracked.
        assert r.measured["top_are_smallest_scale"] < 0.6
        assert r.measured["top_are_largest_scale"] < 0.6


class TestRobustness(object):
    def test_sweeps(self, setup):
        from repro.experiments import robustness

        r = robustness.run(setup, num_seeds=3)
        assert r.measured["seed_top_are_spread"] < 0.3
        assert r.measured["family_top_are_gap"] < 0.3
        # Clustering noise is tail-driven (traffic-weighted view).
        assert r.measured["light_tail_pkt_are"] < r.measured["heavy_tail_pkt_are"]


class TestBenchParity(object):
    def test_every_experiment_has_a_benchmark(self):
        """Deliverable (d): every table/figure experiment must have a
        regenerating benchmark file."""
        import pathlib

        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        bench_sources = " ".join(p.read_text() for p in bench_dir.glob("bench_*.py"))
        import repro.experiments.registry as registry

        for name, runner in registry._REGISTRY.items():
            module = runner.__module__.rsplit(".", 1)[1]
            assert module in bench_sources, f"no benchmark regenerates {name!r}"


class TestExperimentResult(object):
    def test_render_includes_reference(self):
        r = ExperimentResult(
            experiment_id="x",
            title="t",
            tables=["tab"],
            measured={"a": 1.0},
            paper_reference={"a": "one", "b": "qualitative"},
            notes=["n"],
        )
        text = r.render()
        assert "paper: one" in text
        assert "b: qualitative" in text
        assert "note: n" in text
