"""End-to-end integration tests across the full pipeline."""

import numpy as np
import pytest

import repro
from repro.analysis.metrics import evaluate, top_flow_are
from repro.baselines.rcs import RCS, RCSConfig
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.traffic import headers as hdrs
from repro.traffic.packets import apply_loss, bursty_stream, round_robin_stream
from repro.traffic.trace import Trace


class TestPublicApi:
    def test_quickstart_path(self):
        """The README quickstart, verbatim logic."""
        trace = repro.default_paper_trace(scale=0.005, seed=3)
        cfg = repro.CaesarConfig.for_budgets(
            sram_kb=91.55 * 0.005,
            cache_kb=97.66 * 0.005,
            num_packets=trace.num_packets,
            num_flows=trace.num_flows,
        )
        caesar = repro.Caesar(cfg)
        caesar.process(trace.packets)
        caesar.finalize()
        estimates = caesar.estimate(trace.flows.ids)
        quality = repro.evaluate(estimates, trace.flows.sizes)
        assert quality.num_flows == trace.num_flows
        assert np.isfinite(quality.packet_weighted_are)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestHeaderToEstimatePipeline:
    def test_full_capture_pipeline(self, tmp_path):
        """Bytes on the wire -> SHA-1/APHash IDs -> CAESAR -> estimates."""
        rng = np.random.default_rng(2)
        sizes = rng.integers(1, 60, size=120).astype(np.int64)
        capture = hdrs.synthetic_capture(120, sizes, seed=9)
        path = tmp_path / "cap.chd"
        hdrs.write_headers(path, capture)
        trace = hdrs.trace_from_headers(hdrs.read_headers(path))
        caesar = Caesar(
            CaesarConfig(cache_entries=32, entry_capacity=16, k=3, bank_size=512)
        )
        caesar.process(trace.packets)
        caesar.finalize()
        est = caesar.estimate(trace.flows.ids)
        assert top_flow_are(est, trace.flows.sizes, top=10) < 0.3


class TestArrivalPatternRobustness:
    """CAESAR's accuracy holds under arrival patterns that violate the
    uniform assumption (bursty is *easier* for the cache)."""

    @pytest.mark.parametrize("pattern", ["uniform", "round_robin", "bursty"])
    def test_conservation_under_patterns(self, small_trace, pattern):
        if pattern == "uniform":
            packets = small_trace.packets
        elif pattern == "round_robin":
            packets = round_robin_stream(small_trace.flows)
        else:
            packets = bursty_stream(small_trace.flows, burst_length=32, seed=1)
        caesar = Caesar(
            CaesarConfig(
                cache_entries=256,
                entry_capacity=54,
                k=3,
                bank_size=1024,
            )
        )
        caesar.process(packets)
        caesar.finalize()
        assert caesar.counters.total_mass == small_trace.num_packets

    def test_bursty_reduces_evictions(self, small_trace):
        def evictions(packets):
            caesar = Caesar(
                CaesarConfig(cache_entries=128, entry_capacity=1000, k=3, bank_size=1024)
            )
            caesar.process(packets)
            caesar.finalize()
            return caesar.cache.stats.replacement_evictions

        uniform_ev = evictions(small_trace.packets)
        bursty_ev = evictions(bursty_stream(small_trace.flows, burst_length=10**6, seed=2))
        assert bursty_ev < uniform_ev


class TestSchemeComparison:
    """The paper's core ordering on one shared workload."""

    def test_caesar_beats_lossy_rcs(self, small_trace):
        budget_bank = 1024
        caesar = Caesar(
            CaesarConfig(cache_entries=256, entry_capacity=54, k=3, bank_size=budget_bank)
        )
        caesar.process(small_trace.packets)
        caesar.finalize()
        rcs = RCS(RCSConfig(k=3, bank_size=budget_bank))
        rcs.process(apply_loss(small_trace.packets, 0.9, seed=3))

        truth = small_trace.flows.sizes
        caesar_are = top_flow_are(caesar.estimate(small_trace.flows.ids), truth, 20)
        rcs_are = top_flow_are(rcs.estimate(small_trace.flows.ids), truth, 20)
        assert caesar_are < rcs_are

    def test_caesar_matches_lossless_rcs(self, small_trace):
        budget_bank = 1024
        caesar = Caesar(
            CaesarConfig(cache_entries=256, entry_capacity=54, k=3, bank_size=budget_bank)
        )
        caesar.process(small_trace.packets)
        caesar.finalize()
        rcs = RCS(RCSConfig(k=3, bank_size=budget_bank))
        rcs.process(small_trace.packets)
        truth = small_trace.flows.sizes
        caesar_q = evaluate(caesar.estimate(small_trace.flows.ids), truth)
        rcs_q = evaluate(rcs.estimate(small_trace.flows.ids), truth)
        # Figure 6 finding: the two are "quite similar" lossless.
        assert caesar_q.packet_weighted_are < 2.5 * rcs_q.packet_weighted_are + 0.05
        assert rcs_q.packet_weighted_are < 2.5 * caesar_q.packet_weighted_are + 0.05


class TestTraceRoundtripIntoScheme:
    def test_saved_trace_reproduces_estimates(self, tiny_trace, tmp_path):
        path = tmp_path / "t.npz"
        tiny_trace.save(path)
        loaded = Trace.load(path)

        def run(trace):
            caesar = Caesar(
                CaesarConfig(cache_entries=64, entry_capacity=16, k=3, bank_size=256, seed=4)
            )
            caesar.process(trace.packets)
            caesar.finalize()
            return caesar.estimate(trace.flows.ids)

        np.testing.assert_array_equal(run(tiny_trace), run(loaded))
