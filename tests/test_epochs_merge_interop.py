"""Cross-feature interop: epochs x merge x snapshots x volume.

Each extension is tested alone elsewhere; these tests exercise the
compositions a deployment would actually run.
"""

import numpy as np
import pytest

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.epochs import EpochalCaesar
from repro.core.merge import merge
from repro.sram.snapshot import load_counters, save_counters
from repro.traffic.lengths import constant_lengths


CFG = dict(cache_entries=64, entry_capacity=16, k=3, bank_size=512, seed=77)


class TestEpochsPlusMerge:
    def test_merging_epoch_instances_recovers_totals(self, tiny_trace):
        """Two epochs measured by separate same-seed instances merge
        into the whole-horizon measurement."""
        half = len(tiny_trace.packets) // 2
        instances = []
        for part in (tiny_trace.packets[:half], tiny_trace.packets[half:]):
            caesar = Caesar(CaesarConfig(**CFG))
            caesar.process(part)
            caesar.finalize()
            instances.append(caesar)
        merged = merge(instances)
        single = Caesar(CaesarConfig(**CFG))
        single.process(tiny_trace.packets)
        single.finalize()
        top = tiny_trace.flows.top(10)
        np.testing.assert_allclose(
            merged.estimate(top.ids),
            single.estimate(top.ids),
            rtol=0.05,
            atol=3.0,
        )


class TestEpochsPlusSnapshots:
    def test_epoch_records_roundtrip_to_disk(self, tiny_trace, tmp_path):
        ec = EpochalCaesar(CaesarConfig(**CFG))
        third = len(tiny_trace.packets) // 3
        paths = []
        for i in range(3):
            ec.process(tiny_trace.packets[i * third : (i + 1) * third])
            record = ec.close_epoch()
            paths.append(
                save_counters(
                    tmp_path / f"epoch{i}.npz",
                    record.counter_values,
                    CFG["entry_capacity"] * 2**16,
                    metadata={"epoch": record.index, "mass": record.recorded_mass},
                )
            )
        for i, path in enumerate(paths):
            values, meta = load_counters(path)
            np.testing.assert_array_equal(values, ec.epoch(i).counter_values)
            assert meta["epoch"] == i
            assert meta["mass"] == ec.epoch(i).recorded_mass


class TestEpochsPlusVolume:
    def test_volume_epochs(self, tiny_trace):
        cfg = CaesarConfig(
            cache_entries=64, entry_capacity=4000, k=3, bank_size=512,
            counter_capacity=2**40, seed=7,
        )
        ec = EpochalCaesar(cfg)
        half = len(tiny_trace.packets) // 2
        for part in (tiny_trace.packets[:half], tiny_trace.packets[half:]):
            ec.process(part, constant_lengths(len(part), 100))
            ec.close_epoch()
        assert ec.epoch(0).recorded_mass == 100 * half
        total = sum(r.recorded_mass for r in ec.history)
        assert total == 100 * tiny_trace.num_packets


class TestOnlinePlusMedian:
    def test_live_then_final_median_ranking(self, small_trace):
        caesar = Caesar(
            CaesarConfig(cache_entries=256, entry_capacity=54, k=5, bank_size=1024, seed=8)
        )
        caesar.process(small_trace.packets)
        live_top = caesar.estimate_online(small_trace.flows.ids)
        caesar.finalize()
        final = caesar.estimate(small_trace.flows.ids, "median", clip_negative=True)
        # Same elephants rank on top before and after finalize.
        live_set = set(np.argsort(live_top)[-10:].tolist())
        final_set = set(np.argsort(final)[-10:].tolist())
        assert len(live_set & final_set) >= 7
