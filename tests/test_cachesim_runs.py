"""Run-coalescing kernel: run detection, closed forms, buffer boundaries.

The engine-level bit-identity contract lives in
``tests/test_engine_equivalence.py``; this file tests the kernel's
pieces directly — vectorized run detection against a pure-Python
reference, the closed-form overflow expansions against brute-force
per-packet simulation, the bulk buffer append, and the mid-expansion
flush discipline when a single run emits more evictions than the
remaining :class:`EvictionBuffer` space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.base import FINAL_DUMP_CODE, OVERFLOW_CODE
from repro.cachesim.buffer import EvictionBuffer
from repro.cachesim.cache import FlowCache
from repro.cachesim.runs import (
    RUN_COALESCE_THRESHOLD,
    count_runs,
    find_runs,
    should_coalesce,
    uniform_weight_runs,
    unit_run_overflows,
    weighted_run_overflows,
)
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry


def _runs_reference(ids: list[int]) -> list[tuple[int, int]]:
    """Pure-Python maximal-run detection: [(start, length), ...]."""
    out: list[tuple[int, int]] = []
    for i, fid in enumerate(ids):
        if i == 0 or fid != ids[i - 1]:
            out.append((i, 1))
        else:
            start, length = out[-1]
            out[-1] = (start, length + 1)
    return out


# -- run detection ---------------------------------------------------------


class TestFindRuns:
    def test_empty(self):
        starts, lengths = find_runs(np.array([], dtype=np.uint64))
        assert len(starts) == 0 and len(lengths) == 0
        assert count_runs(np.array([], dtype=np.uint64)) == 0

    def test_single_packet(self):
        starts, lengths = find_runs(np.array([7], dtype=np.uint64))
        assert starts.tolist() == [0] and lengths.tolist() == [1]

    def test_all_same_flow(self):
        starts, lengths = find_runs(np.full(100, 3, dtype=np.uint64))
        assert starts.tolist() == [0] and lengths.tolist() == [100]

    def test_alternating(self):
        ids = np.array([1, 2, 1, 2], dtype=np.uint64)
        starts, lengths = find_runs(ids)
        assert starts.tolist() == [0, 1, 2, 3]
        assert lengths.tolist() == [1, 1, 1, 1]
        assert count_runs(ids) == 4

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=200))
    def test_matches_reference(self, ids):
        arr = np.array(ids, dtype=np.uint64)
        starts, lengths = find_runs(arr)
        expected = _runs_reference(ids)
        assert list(zip(starts.tolist(), lengths.tolist())) == expected
        assert count_runs(arr) == len(expected)
        assert int(lengths.sum()) == len(ids)

    def test_should_coalesce_threshold(self):
        # 8 packets / 2 runs = mean run length 4 >= threshold.
        bursty = np.repeat(np.array([1, 2], dtype=np.uint64), 4)
        assert should_coalesce(bursty)
        # All distinct: mean run length 1 < threshold.
        assert not should_coalesce(np.arange(8, dtype=np.uint64))
        # Too short to be worth probing.
        assert not should_coalesce(np.array([], dtype=np.uint64))
        assert not should_coalesce(np.array([1], dtype=np.uint64))
        assert RUN_COALESCE_THRESHOLD > 1.0


class TestUniformWeightRuns:
    def test_flags_per_run(self):
        #          |--run 1--|  |r2|  |--run 3--|
        ids = np.array([1, 1, 1, 2, 3, 3], dtype=np.uint64)
        weights = np.array([4, 4, 4, 9, 2, 5], dtype=np.int64)
        starts, _ = find_runs(ids)
        assert uniform_weight_runs(weights, starts).tolist() == [True, True, False]

    def test_boundary_weight_change_stays_uniform(self):
        # The weight changes exactly at a run boundary: both uniform.
        ids = np.array([1, 1, 2, 2], dtype=np.uint64)
        weights = np.array([3, 3, 8, 8], dtype=np.int64)
        starts, _ = find_runs(ids)
        assert uniform_weight_runs(weights, starts).tolist() == [True, True]


# -- closed forms vs brute force -------------------------------------------


def _brute_force(count: int, run_length: int, weight: int, capacity: int):
    """Per-packet replay of a hit run: (eviction values, final count)."""
    events = []
    for _ in range(run_length):
        count += weight
        if count >= capacity:
            events.append(count)
            count = 0
    return events, count


@settings(max_examples=150, deadline=None)
@given(
    count=st.integers(min_value=0, max_value=30),
    run_length=st.integers(min_value=0, max_value=200),
    capacity=st.integers(min_value=1, max_value=31),
)
def test_unit_closed_form_matches_brute_force(count, run_length, capacity):
    if count >= capacity:
        count %= capacity  # resident counts are always < capacity
    events, final = _brute_force(count, run_length, 1, capacity)
    n_evict, remainder = unit_run_overflows(count, run_length, capacity)
    assert events == [capacity] * n_evict
    assert remainder == final


@settings(max_examples=200, deadline=None)
@given(
    count=st.integers(min_value=0, max_value=30),
    run_length=st.integers(min_value=0, max_value=120),
    weight=st.integers(min_value=1, max_value=80),
    capacity=st.integers(min_value=1, max_value=31),
)
def test_weighted_closed_form_matches_brute_force(count, run_length, weight, capacity):
    if count >= capacity:
        count %= capacity
    events, final = _brute_force(count, run_length, weight, capacity)
    first, n_cycles, cycle_value, remainder = weighted_run_overflows(
        count, run_length, weight, capacity
    )
    expected = [first] + [cycle_value] * n_cycles if first else []
    assert events == expected
    assert remainder == final


def test_weighted_closed_form_jumbo_cycle_is_every_packet():
    # w >= y: every hit overflows outright (cycle length 1, value w).
    first, n_cycles, cycle_value, remainder = weighted_run_overflows(2, 3, 15, 10)
    assert (first, n_cycles, cycle_value, remainder) == (17, 2, 15, 0)


# -- EvictionBuffer.extend_same --------------------------------------------


class TestExtendSame:
    def test_fills_and_reports(self):
        buf = EvictionBuffer(5)
        assert buf.extend_same(9, 4, OVERFLOW_CODE, 3) == 3
        assert buf.length == 3
        ids, values, reasons = buf.chunk()
        assert ids.tolist() == [9, 9, 9]
        assert values.tolist() == [4, 4, 4]
        assert reasons.tolist() == [OVERFLOW_CODE] * 3

    def test_caps_at_remaining_space(self):
        buf = EvictionBuffer(5)
        buf.append(1, 1, OVERFLOW_CODE)
        assert buf.extend_same(9, 4, OVERFLOW_CODE, 100) == 4
        assert buf.is_full

    def test_zero_is_noop(self):
        buf = EvictionBuffer(5)
        assert buf.extend_same(9, 4, OVERFLOW_CODE, 0) == 0
        assert buf.length == 0


# -- buffer-boundary expansion (mid-run flush discipline) -------------------


def _collect(cache: FlowCache, packets, buffer, weights=None, coalesce=True):
    chunks: list[list[tuple[int, int, int]]] = []

    def drain(ids, values, reasons):
        chunks.append(list(zip(ids.tolist(), values.tolist(), reasons.tolist())))

    cache.process_into(packets, buffer, drain, weights=weights, coalesce=coalesce)
    cache.dump_into(buffer, drain)
    return chunks


@pytest.mark.parametrize("buffer_capacity", [1, 2, 3, 7])
def test_single_run_overflowing_buffer_flushes_mid_expansion(buffer_capacity):
    """One run whose closed-form expansion emits more evictions than the
    buffer holds: the expansion must flush mid-run, producing exactly
    the chunk boundaries of the per-packet path."""
    packets = np.full(101, 5, dtype=np.uint64)  # y=2 → 50 overflows + residue 1
    baseline = _collect(
        FlowCache(4, 2), packets, EvictionBuffer(buffer_capacity), coalesce=False
    )
    coalesced = _collect(
        FlowCache(4, 2), packets, EvictionBuffer(buffer_capacity), coalesce=True
    )
    assert coalesced == baseline
    assert len(coalesced) > 1  # the expansion really did flush mid-run
    flat = [e for c in coalesced for e in c]
    assert flat == [(5, 2, OVERFLOW_CODE)] * 50 + [(5, 1, FINAL_DUMP_CODE)]


def test_weighted_run_cycle_expansion_straddles_buffer():
    """Equal-weight run whose first eviction plus cycle tail straddle
    several flushes — values must still be first, then cycles."""
    packets = np.full(40, 8, dtype=np.uint64)
    weights = np.full(40, 7, dtype=np.int64)  # y=10: first at 2 hits, cycle len 2
    base = _collect(
        FlowCache(2, 10), packets, EvictionBuffer(3), weights=weights, coalesce=False
    )
    runs = _collect(
        FlowCache(2, 10), packets, EvictionBuffer(3), weights=weights, coalesce=True
    )
    assert runs == base


def test_jumbo_fresh_insert_run_expansion():
    """w >= y at the head of a fresh-insert run: the insert overflows
    outright and every subsequent hit emits w — across buffer flushes."""
    packets = np.full(9, 3, dtype=np.uint64)
    weights = np.full(9, 25, dtype=np.int64)  # y=10, w=25: jumbo every packet
    base = _collect(
        FlowCache(2, 10), packets, EvictionBuffer(2), weights=weights, coalesce=False
    )
    runs = _collect(
        FlowCache(2, 10), packets, EvictionBuffer(2), weights=weights, coalesce=True
    )
    assert runs == base
    flat = [e for c in runs for e in c]
    assert flat == [(3, 25, OVERFLOW_CODE)] * 9  # nothing resident to dump


def test_zero_packet_stream_is_noop():
    cache = FlowCache(4, 8)
    chunks = _collect(cache, np.array([], dtype=np.uint64), EvictionBuffer(4))
    assert chunks == []
    assert cache.stats.accesses == 0


def test_zero_length_weighted_stream_is_noop():
    cache = FlowCache(4, 8)
    chunks = _collect(
        cache,
        np.array([], dtype=np.uint64),
        EvictionBuffer(4),
        weights=np.array([], dtype=np.int64),
    )
    assert chunks == []


def test_y_equal_one_unit_run_evicts_every_packet():
    """y == 1 degenerates every unit insert/hit into an overflow."""
    packets = np.full(12, 4, dtype=np.uint64)
    base = _collect(FlowCache(4, 1), packets, EvictionBuffer(5), coalesce=False)
    runs = _collect(FlowCache(4, 1), packets, EvictionBuffer(5), coalesce=True)
    assert runs == base
    flat = [e for c in runs for e in c]
    assert flat == [(4, 1, OVERFLOW_CODE)] * 12


def test_mismatched_weights_rejected():
    cache = FlowCache(4, 8)
    with pytest.raises(ConfigError):
        cache.process_into(
            np.array([1, 1], dtype=np.uint64),
            EvictionBuffer(4),
            lambda i, v, r: None,
            weights=np.array([1], dtype=np.int64),
            coalesce=True,
        )


def test_mixed_weight_run_falls_back_per_packet():
    """A run whose weights differ has no closed form; the fallback body
    must still match the per-packet loop exactly."""
    packets = np.full(20, 6, dtype=np.uint64)
    rng = np.random.default_rng(11)
    weights = rng.integers(1, 12, size=20).astype(np.int64)
    base = _collect(
        FlowCache(3, 7), packets, EvictionBuffer(3), weights=weights, coalesce=False
    )
    runs = _collect(
        FlowCache(3, 7), packets, EvictionBuffer(3), weights=weights, coalesce=True
    )
    assert runs == base


def test_replacement_heavy_coalesced_stream_matches():
    """More flows than entries with long runs: replacement evictions at
    run heads interleave with coalesced overflow expansions."""
    rng = np.random.default_rng(23)
    ids = np.repeat(rng.integers(0, 40, size=300).astype(np.uint64), 7)
    for policy in ("lru", "random"):
        base = _collect(
            FlowCache(4, 3, policy=policy, seed=2), ids, EvictionBuffer(13),
            coalesce=False,
        )
        runs = _collect(
            FlowCache(4, 3, policy=policy, seed=2), ids, EvictionBuffer(13),
            coalesce=True,
        )
        assert runs == base
        assert any(e[2] == FINAL_DUMP_CODE for c in base for e in c)


# -- kernel metrics ---------------------------------------------------------


def test_run_metrics_emitted():
    registry = MetricsRegistry()
    cache = FlowCache(8, 4, registry=registry)
    packets = np.repeat(np.arange(5, dtype=np.uint64), 10)  # 50 packets, 5 runs
    cache.process_into(
        packets, EvictionBuffer(16), lambda i, v, r: None, coalesce=True
    )
    snap = registry.snapshot()
    assert snap["counters"]["cache.run_chunks"] == 1
    assert snap["counters"]["cache.run_packets"] == 50
    assert snap["counters"]["cache.runs"] == 5
    assert snap["gauges"]["cache.coalescing_ratio"] == pytest.approx(10.0)


def test_run_metrics_silent_when_disabled():
    cache = FlowCache(8, 4)  # null registry
    packets = np.repeat(np.arange(5, dtype=np.uint64), 10)
    cache.process_into(
        packets, EvictionBuffer(16), lambda i, v, r: None, coalesce=True
    )
    assert not any(cache._metrics.snapshot().values())


def test_auto_selection_routes_by_locality():
    """engine='batched' default: bursty chunks coalesce, shuffled chunks
    keep the per-packet loop — observable via the run-chunk counter."""
    registry = MetricsRegistry()
    cache = FlowCache(8, 4, registry=registry)
    bursty = np.repeat(np.arange(6, dtype=np.uint64), 8)
    shuffled = np.arange(48, dtype=np.uint64) % 7
    cache.process_into(bursty, EvictionBuffer(16), lambda i, v, r: None)
    assert registry.snapshot()["counters"]["cache.run_chunks"] == 1
    cache.process_into(shuffled, EvictionBuffer(16), lambda i, v, r: None)
    assert registry.snapshot()["counters"]["cache.run_chunks"] == 1  # unchanged
