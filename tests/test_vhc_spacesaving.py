"""Tests for VHC and Space-Saving."""

import numpy as np
import pytest

from repro.baselines.spacesaving import SpaceSaving
from repro.baselines.vhc import VHC, VHCConfig, hll_alpha, hll_raw_estimate
from repro.errors import ConfigError


class TestHllPrimitives:
    def test_alpha_values(self):
        assert hll_alpha(16) == 0.673
        assert hll_alpha(32) == 0.697
        assert hll_alpha(64) == 0.709
        assert 0.7 < hll_alpha(1024) < 0.73

    def test_raw_estimate_empty(self):
        # All-zero registers: linear counting says ~0.
        est = hll_raw_estimate(np.zeros(64, dtype=np.int64))
        assert est == pytest.approx(0.0, abs=1e-9)

    def test_raw_estimate_monotone_in_ranks(self):
        low = hll_raw_estimate(np.full(64, 3, dtype=np.int64))
        high = hll_raw_estimate(np.full(64, 6, dtype=np.int64))
        assert high > low


class TestVHCConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            VHCConfig(num_registers=1)
        with pytest.raises(ConfigError):
            VHCConfig(num_registers=64, virtual_registers=64)

    def test_memory(self):
        assert VHCConfig(num_registers=8192).memory_kilobytes == pytest.approx(5.0)


class TestVHC:
    def test_deterministic_virtual_sets(self):
        vhc = VHC(VHCConfig(num_registers=1024, virtual_registers=16, seed=4))
        ids = np.array([7, 9], dtype=np.uint64)
        a = vhc._virtual_indices(ids)
        b = vhc._virtual_indices(ids)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (2, 16)

    def test_total_estimate_tracks_stream(self):
        vhc = VHC(VHCConfig(num_registers=4096, virtual_registers=64, seed=5))
        rng = np.random.default_rng(1)
        packets = rng.integers(0, 2**63, size=20_000, dtype=np.uint64)
        vhc.process(packets)
        assert vhc.total_estimate() == pytest.approx(20_000, rel=0.25)

    def test_elephant_estimates(self):
        """A few large flows over background: VHC recovers their sizes
        within HLL-grade error."""
        vhc = VHC(VHCConfig(num_registers=16384, virtual_registers=256, seed=6))
        rng = np.random.default_rng(2)
        background = rng.integers(100, 2**63, size=30_000, dtype=np.uint64)
        elephants = {1: 20_000, 2: 8_000}
        stream = [background]
        for fid, size in elephants.items():
            stream.append(np.full(size, fid, dtype=np.uint64))
        packets = np.concatenate(stream)
        rng.shuffle(packets)
        vhc.process(packets)
        est = vhc.estimate(np.array([1, 2], dtype=np.uint64))
        assert est[0] == pytest.approx(20_000, rel=0.5)
        assert est[1] == pytest.approx(8_000, rel=0.5)
        assert est[0] > est[1]

    def test_estimates_nonnegative(self):
        vhc = VHC(VHCConfig(num_registers=2048, virtual_registers=32, seed=7))
        vhc.process(np.arange(1000, dtype=np.uint64))
        est = vhc.estimate(np.arange(50, dtype=np.uint64))
        assert (est >= 0).all()

    def test_empty_batch(self):
        vhc = VHC(VHCConfig())
        vhc.process(np.array([], dtype=np.uint64))
        assert vhc.num_packets == 0


class TestSpaceSaving:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SpaceSaving(0)

    def test_exact_when_under_capacity(self):
        ss = SpaceSaving(10)
        packets = np.repeat(np.arange(5, dtype=np.uint64), [9, 7, 5, 3, 1])
        ss.process(packets)
        top = ss.top(5)
        assert [(fid, cnt) for fid, cnt, _ in top] == [(0, 9), (1, 7), (2, 5), (3, 3), (4, 1)]
        assert all(err == 0 for _, _, err in top)
        assert ss.guaranteed(0)

    def test_heavy_hitters_survive_churn(self):
        rng = np.random.default_rng(3)
        mice = rng.integers(1000, 2**63, size=20_000, dtype=np.uint64)
        elephant = np.full(3_000, 7, dtype=np.uint64)
        packets = np.concatenate([mice, elephant])
        rng.shuffle(packets)
        ss = SpaceSaving(capacity=200)
        ss.process(packets)
        top_ids = [fid for fid, _, _ in ss.top(5)]
        assert 7 in top_ids

    def test_estimates_are_upper_bounds(self):
        rng = np.random.default_rng(4)
        packets = rng.integers(0, 50, size=5000, dtype=np.uint64)
        truth = np.bincount(packets.astype(np.int64), minlength=50)
        ss = SpaceSaving(capacity=20)
        ss.process(packets)
        est = ss.estimate(np.arange(50, dtype=np.uint64))
        tracked = est > 0
        assert (est[tracked] >= truth[tracked]).all()

    def test_untracked_estimate_zero(self):
        ss = SpaceSaving(4)
        ss.update(1)
        assert ss.estimate(np.array([99], dtype=np.uint64))[0] == 0.0

    def test_weighted_updates(self):
        ss = SpaceSaving(4)
        ss.update(1, weight=100)
        ss.update(1, weight=50)
        assert ss.estimate(np.array([1], dtype=np.uint64))[0] == 150
        assert ss.num_packets == 150
