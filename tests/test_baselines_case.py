"""Unit and behavioural tests for the CASE baseline."""

import numpy as np
import pytest

from repro.baselines.case import Case, CaseConfig
from repro.errors import ConfigError, QueryError


def make_case(trace, bits=10, **overrides):
    defaults = dict(
        cache_entries=max(8, trace.num_flows // 8),
        entry_capacity=max(2, int(2 * trace.mean_flow_size)),
        num_counters=trace.num_flows * 2,
        counter_capacity=(1 << bits) - 1,
        max_value=float(trace.flows.sizes.max()),
        seed=13,
    )
    defaults.update(overrides)
    return Case(CaseConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CaseConfig(
                cache_entries=0, entry_capacity=1, num_counters=1,
                counter_capacity=1, max_value=10,
            )
        with pytest.raises(ConfigError):
            CaseConfig(
                cache_entries=1, entry_capacity=1, num_counters=1,
                counter_capacity=1, max_value=10, replacement="fifo",
            )

    def test_for_budgets_one_counter_per_flow(self):
        cfg = CaseConfig.for_budgets(
            sram_kb=183.11, cache_kb=97.66,
            num_packets=27_720_011, num_flows=1_014_601, max_value=1e6,
        )
        # 183.11 KB over 1.01M flows: 1-bit counters, L >= Q.
        assert cfg.num_counters >= 1_014_601
        assert cfg.counter_capacity == 1

    def test_for_budgets_bigger_budget_wider_counters(self):
        small = CaseConfig.for_budgets(
            sram_kb=183.11, cache_kb=97.66,
            num_packets=27_720_011, num_flows=1_014_601, max_value=1e6,
        )
        big = CaseConfig.for_budgets(
            sram_kb=1.21 * 1024, cache_kb=97.66,
            num_packets=27_720_011, num_flows=1_014_601, max_value=1e6,
        )
        assert big.counter_capacity > small.counter_capacity
        # The paper's "expanding l about six times": ~10 bits vs ~1.5.
        assert (1.21 * 1024 * 8192) // 1_014_601 in (9, 10)

    def test_for_budgets_rejects_starved(self):
        with pytest.raises(ConfigError):
            CaseConfig.for_budgets(
                sram_kb=0.001, cache_kb=1.0,
                num_packets=1000, num_flows=100_000, max_value=10,
            )


class TestLifecycle:
    def test_estimate_requires_finalize(self, tiny_trace):
        case = make_case(tiny_trace)
        case.process(tiny_trace.packets)
        with pytest.raises(QueryError):
            case.estimate(tiny_trace.flows.ids)

    def test_process_after_finalize_raises(self, tiny_trace):
        case = make_case(tiny_trace)
        case.process(tiny_trace.packets)
        case.finalize()
        with pytest.raises(QueryError):
            case.process(tiny_trace.packets)

    def test_power_operations_counted(self, tiny_trace):
        case = make_case(tiny_trace)
        case.process(tiny_trace.packets)
        case.finalize()
        # One power op per eviction + per dumped entry.
        expected = case.cache.stats.total_evictions + case.cache.stats.dumped_entries
        assert case.power_operations == expected
        assert case.power_operations > 0


class TestAccuracy:
    def test_wide_counters_track_elephants(self, small_trace):
        case = make_case(small_trace, bits=16)
        case.process(small_trace.packets)
        case.finalize()
        est = case.estimate(small_trace.flows.ids)
        truth = small_trace.flows.sizes
        top = np.argsort(truth)[-10:]
        rel = np.abs(est[top] - truth[top]) / truth[top]
        assert rel.mean() < 0.5  # compression + collisions, but tracking

    def test_one_bit_counters_collapse(self, small_trace):
        """Figure 5(a): with ~1-bit counters estimates are almost 0."""
        case = make_case(small_trace, bits=1)
        case.process(small_trace.packets)
        case.finalize()
        est = case.estimate(small_trace.flows.ids)
        assert float(np.mean(est < 1.0)) > 0.6

    def test_estimates_nonnegative(self, tiny_trace):
        case = make_case(tiny_trace)
        case.process(tiny_trace.packets)
        case.finalize()
        assert (case.estimate(tiny_trace.flows.ids) >= 0).all()

    def test_deterministic(self, tiny_trace):
        results = []
        for _ in range(2):
            case = make_case(tiny_trace)
            case.process(tiny_trace.packets)
            case.finalize()
            results.append(case.estimate(tiny_trace.flows.ids))
        np.testing.assert_array_equal(results[0], results[1])
