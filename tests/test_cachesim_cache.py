"""Unit tests for the on-chip FlowCache."""

import numpy as np
import pytest

from repro.cachesim.base import EvictionReason
from repro.cachesim.cache import FlowCache, make_policy
from repro.errors import ConfigError


def collecting_sink(out):
    def sink(fid, value, reason):
        out.append((fid, value, reason))

    return sink


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            FlowCache(0, 10)
        with pytest.raises(ConfigError):
            FlowCache(10, 0)
        with pytest.raises(ConfigError):
            FlowCache(10, 10, policy="fifo")

    def test_make_policy(self):
        from repro.cachesim.lru import LRUPolicy
        from repro.cachesim.random_replace import RandomPolicy

        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)


class TestHitMissAccounting:
    def test_hits_and_misses(self):
        cache = FlowCache(4, 100)
        out = []
        stream = np.array([1, 1, 2, 1, 2, 3], dtype=np.uint64)
        cache.process(stream, collecting_sink(out))
        assert cache.stats.accesses == 6
        assert cache.stats.misses == 3
        assert cache.stats.hits == 3
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert out == []  # no evictions: table never filled, no overflow

    def test_resident_counts(self):
        cache = FlowCache(4, 100)
        out = []
        cache.process(np.array([1, 1, 1, 2], dtype=np.uint64), collecting_sink(out))
        assert cache.resident_count(1) == 3
        assert cache.resident_count(2) == 1
        assert 1 in cache and 3 not in cache
        assert len(cache) == 2


class TestOverflowEviction:
    def test_overflow_at_capacity(self):
        cache = FlowCache(4, entry_capacity=3)
        out = []
        cache.process(np.array([7] * 7, dtype=np.uint64), collecting_sink(out))
        # Counts: 1,2,3->evict(3),1,2,3->evict(3),1
        assert [(fid, v) for fid, v, _ in out] == [(7, 3), (7, 3)]
        assert all(r is EvictionReason.OVERFLOW for _, _, r in out)
        assert cache.resident_count(7) == 1
        assert cache.stats.overflow_evictions == 2

    def test_flow_stays_resident_after_overflow(self):
        cache = FlowCache(4, entry_capacity=2)
        out = []
        cache.process(np.array([9, 9], dtype=np.uint64), collecting_sink(out))
        assert 9 in cache
        assert cache.resident_count(9) == 0


class TestReplacementEviction:
    def test_lru_victim_flushed(self):
        cache = FlowCache(2, 100, policy="lru")
        out = []
        cache.process(np.array([1, 1, 2, 3], dtype=np.uint64), collecting_sink(out))
        assert out == [(1, 2, EvictionReason.REPLACEMENT)]
        assert 1 not in cache and 2 in cache and 3 in cache

    def test_replacement_counts(self):
        cache = FlowCache(1, 100)
        out = []
        cache.process(np.array([1, 2, 3, 4], dtype=np.uint64), collecting_sink(out))
        assert cache.stats.replacement_evictions == 3
        assert [v for _, v, _ in out] == [1, 1, 1]

    def test_zero_value_victim_not_emitted(self):
        # A flow that just overflowed (count reset to 0) can be chosen
        # as victim; its zero value must not reach the sink.
        cache = FlowCache(1, entry_capacity=2)
        out = []
        cache.process(np.array([5, 5, 6], dtype=np.uint64), collecting_sink(out))
        values = [v for _, v, _ in out]
        assert 0 not in values
        assert cache.stats.replacement_evictions == 0  # nothing flushed for victim 5


class TestDump:
    def test_dump_flushes_everything(self):
        cache = FlowCache(8, 100)
        out = []
        cache.process(np.array([1, 1, 2], dtype=np.uint64), collecting_sink(out))
        cache.dump(collecting_sink(out))
        assert sorted((fid, v) for fid, v, _ in out) == [(1, 2), (2, 1)]
        assert all(r is EvictionReason.FINAL_DUMP for _, _, r in out)
        assert len(cache) == 0
        assert cache.stats.dumped_packets == 3

    def test_dump_empty_cache(self):
        cache = FlowCache(4, 10)
        out = []
        cache.dump(collecting_sink(out))
        assert out == []


class TestConservation:
    @pytest.mark.parametrize("policy", ["lru", "random"])
    def test_no_packet_lost(self, policy, tiny_trace):
        """Core invariant: every packet ends up either evicted or dumped."""
        cache = FlowCache(64, 16, policy=policy, seed=3)
        total = []
        cache.process(tiny_trace.packets, collecting_sink(total))
        cache.dump(collecting_sink(total))
        assert sum(v for _, v, _ in total) == tiny_trace.num_packets

    @pytest.mark.parametrize("policy", ["lru", "random"])
    def test_per_flow_conservation(self, policy, tiny_trace):
        cache = FlowCache(32, 8, policy=policy, seed=4)
        evs = cache.collect(tiny_trace.packets)
        per_flow: dict[int, int] = {}
        for e in evs:
            per_flow[e.flow_id] = per_flow.get(e.flow_id, 0) + e.value
        for fid, size in zip(tiny_trace.flows.ids.tolist(), tiny_trace.flows.sizes.tolist()):
            assert per_flow.get(fid, 0) == size


class TestMemoryAccounting:
    def test_memory_bits(self):
        cache = FlowCache(1000, 63)
        assert cache.memory_bits(flow_id_bits=0) == 1000 * 6
        assert cache.memory_bits(flow_id_bits=64) == 1000 * 70

    def test_eviction_value_histogram(self):
        cache = FlowCache(1, entry_capacity=5)
        out = []
        cache.process(np.array([1, 2, 1, 2], dtype=np.uint64), collecting_sink(out))
        assert cache.stats.eviction_value_counts == {1: 3}


class TestFinalizeFlushesPendingChunk:
    """Regression: finalize must deliver any chunk still sitting in the
    eviction buffer even when the *final* contribution is empty-sized —
    a zero-packet stream, a cache already emptied, or a dump that adds
    zero rows on top of pending residue."""

    def _chunks(self):
        chunks = []

        def drain(ids, values, reasons):
            chunks.append(
                list(zip(ids.tolist(), values.tolist(), reasons.tolist()))
            )

        return chunks, drain

    def test_flush_pending_empty_buffer_is_noop(self):
        from repro.cachesim.buffer import EvictionBuffer

        cache = FlowCache(4, 10)
        chunks, drain = self._chunks()
        cache.flush_pending(EvictionBuffer(8), drain)
        assert chunks == []

    def test_dump_into_delivers_pending_residue_first(self):
        from repro.cachesim.base import OVERFLOW_CODE
        from repro.cachesim.buffer import EvictionBuffer

        cache = FlowCache(4, 10)
        buffer = EvictionBuffer(8)
        # Residue left pending by an earlier (partial) fill.
        buffer.append(7, 3, OVERFLOW_CODE)
        chunks, drain = self._chunks()
        cache.dump_into(buffer, drain)  # cache is empty: dump adds 0 rows
        assert chunks == [[(7, 3, OVERFLOW_CODE)]]
        assert buffer.length == 0

    def test_dump_into_pending_chunk_precedes_dump_rows(self):
        from repro.cachesim.base import FINAL_DUMP_CODE, OVERFLOW_CODE
        from repro.cachesim.buffer import EvictionBuffer

        cache = FlowCache(4, 10)
        buffer = EvictionBuffer(8)
        cache.process_into(
            np.array([1, 1, 1], dtype=np.uint64),
            buffer,
            lambda i, v, r: None,
        )
        assert len(cache) == 1  # flow 1 resident with count 3
        buffer.append(9, 2, OVERFLOW_CODE)  # pending residue
        chunks, drain = self._chunks()
        cache.dump_into(buffer, drain)
        assert chunks == [[(9, 2, OVERFLOW_CODE)], [(1, 3, FINAL_DUMP_CODE)]]

    @pytest.mark.parametrize("engine", ["scalar", "batched", "runs"])
    def test_caesar_finalize_on_zero_packet_stream(self, engine):
        from repro.core.caesar import Caesar
        from repro.core.config import CaesarConfig

        caesar = Caesar(
            CaesarConfig(
                cache_entries=8, entry_capacity=4, k=3, bank_size=32, engine=engine
            )
        )
        caesar.process(np.array([], dtype=np.uint64))
        caesar.finalize()
        ids = np.array([1, 2, 3], dtype=np.uint64)
        assert caesar.estimate(ids, "csm") == pytest.approx([0.0, 0.0, 0.0])
        stats = caesar.cache.stats
        assert (stats.accesses, stats.evicted_packets, stats.dumped_packets) == (0, 0, 0)

    @pytest.mark.parametrize("engine", ["scalar", "batched", "runs"])
    def test_case_finalize_on_zero_packet_stream(self, engine):
        from repro.baselines.case import Case, CaseConfig

        case = Case(
            CaseConfig(
                cache_entries=8,
                entry_capacity=4,
                num_counters=32,
                counter_capacity=255,
                max_value=100.0,
                engine=engine,
            )
        )
        case.finalize()
        assert case.estimate(np.array([5], dtype=np.uint64)) == pytest.approx([0.0])

    @pytest.mark.parametrize("engine", ["scalar", "batched", "runs"])
    def test_caesar_double_finalize_after_work_is_stable(self, engine, tiny_trace):
        from repro.core.caesar import Caesar
        from repro.core.config import CaesarConfig

        caesar = Caesar(
            CaesarConfig(
                cache_entries=16, entry_capacity=4, k=3, bank_size=64, engine=engine
            )
        )
        caesar.process(tiny_trace.packets[:1000])
        caesar.finalize()
        before = caesar.counters.values.copy()
        caesar.finalize()  # idempotent: no residue delivered twice
        np.testing.assert_array_equal(caesar.counters.values, before)
