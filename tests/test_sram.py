"""Unit tests for the banked counter array and memory layout helpers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sram.counterarray import BankedCounterArray
from repro.sram.layout import (
    bank_size_for_budget,
    cache_entries_for_budget,
    cache_kilobytes,
    counter_bits,
    sram_kilobytes,
)


class TestBankedCounterArray:
    def test_construction_validation(self):
        for bad in [(0, 1, 1), (1, 0, 1), (1, 1, 0)]:
            with pytest.raises(ConfigError):
                BankedCounterArray(*bad)

    def test_add_and_gather(self):
        arr = BankedCounterArray(2, 4, 1000)
        arr.add_at(np.array([0, 5, 5]), np.array([3, 1, 2]))
        assert arr.values[0] == 3
        assert arr.values[5] == 3
        assert arr.gather(np.array([[0, 5]])).tolist() == [[3, 3]]

    def test_duplicate_indices_accumulate(self):
        arr = BankedCounterArray(1, 4, 1000)
        arr.add_at(np.array([2, 2, 2]), 1)
        assert arr.values[2] == 3

    def test_add_one(self):
        arr = BankedCounterArray(1, 4, 10)
        arr.add_one(1, 7)
        arr.add_one(1, 2)
        assert arr.values[1] == 9

    def test_saturation(self):
        arr = BankedCounterArray(1, 2, counter_capacity=10)
        arr.add_at(np.array([0]), np.array([25]))
        assert arr.values[0] == 10
        assert arr.saturated_mass == 15
        assert arr.saturated_counters == 1
        arr.add_one(1, 12)
        assert arr.values[1] == 10
        assert arr.saturated_mass == 17

    def test_total_mass(self):
        arr = BankedCounterArray(3, 5, 1000)
        arr.add_at(np.array([0, 7, 14]), np.array([1, 2, 3]))
        assert arr.total_mass == 6

    def test_bank_views(self):
        arr = BankedCounterArray(2, 3, 100)
        arr.add_at(np.array([4]), np.array([9]))
        assert arr.bank(1).tolist() == [0, 9, 0]
        with pytest.raises(ConfigError):
            arr.bank(2)

    def test_values_read_only(self):
        arr = BankedCounterArray(1, 2, 10)
        with pytest.raises(ValueError):
            arr.values[0] = 5

    def test_reset(self):
        arr = BankedCounterArray(1, 2, 5)
        arr.add_at(np.array([0]), np.array([100]))
        arr.reset()
        assert arr.total_mass == 0
        assert arr.saturated_mass == 0

    def test_memory_accounting(self):
        arr = BankedCounterArray(3, 1000, counter_capacity=2**20 - 1)
        assert arr.bits_per_counter == 20
        assert arr.memory_bits == 3 * 1000 * 20
        assert arr.memory_kilobytes == pytest.approx(3 * 1000 * 20 / 8192)


class TestLayoutHelpers:
    def test_counter_bits(self):
        assert counter_bits(1) == 1
        assert counter_bits(2) == 2
        assert counter_bits(255) == 8
        assert counter_bits(256) == 9
        assert counter_bits(2**20 - 1) == 20
        with pytest.raises(ConfigError):
            counter_bits(0)

    def test_sram_kilobytes_roundtrip(self):
        kb = sram_kilobytes(3, 12501, 2**20 - 1)
        assert kb == pytest.approx(3 * 12501 * 20 / 8192)

    def test_bank_size_for_budget_fits(self):
        budget = 91.55
        bank = bank_size_for_budget(budget, 3, 2**20 - 1)
        assert sram_kilobytes(3, bank, 2**20 - 1) <= budget
        assert sram_kilobytes(3, bank + 1, 2**20 - 1) > budget

    def test_paper_geometry(self):
        # 91.55 KB with k=3 banks of 20-bit counters: ~12.5k per bank,
        # the geometry DESIGN.md derives for the paper's Fig. 4 budget.
        bank = bank_size_for_budget(91.55, 3, 2**20 - 1)
        assert 12000 <= bank <= 13000

    def test_bank_size_rejects_tiny_budget(self):
        with pytest.raises(ConfigError):
            bank_size_for_budget(0.0001, 3, 2**30)

    def test_cache_budget_roundtrip(self):
        y = 54
        entries = cache_entries_for_budget(97.66, y)
        assert cache_kilobytes(entries, y) <= 97.66
        assert cache_kilobytes(entries + 1, y) > 97.66

    def test_cache_rejects_zero_budget(self):
        with pytest.raises(ConfigError):
            cache_entries_for_budget(0, 54)
        with pytest.raises(ConfigError):
            cache_kilobytes(0, 54)
