"""Additional coverage: sharded estimators beyond CSM, planner-driven
sharding, and MeasurementResult internals."""

import numpy as np
import pytest

import repro
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError


class TestShardedDecoders:
    @pytest.fixture(scope="class")
    def sharded(self, small_trace):
        sc = ShardedCaesar(
            repro.CaesarConfig(
                cache_entries=256, entry_capacity=54, k=3, bank_size=2048, seed=2
            ),
            num_shards=3,
            divide_budget=False,
        )
        sc.process(small_trace.packets)
        sc.finalize()
        return sc

    def test_all_methods_route(self, sharded, small_trace):
        ids = small_trace.flows.ids[:50]
        for method in ("csm", "mlm", "median"):
            est = sharded.estimate(ids, method)
            assert est.shape == (50,)

    def test_unknown_method_raises(self, sharded, small_trace):
        with pytest.raises(ConfigError):
            sharded.estimate(small_trace.flows.ids[:5], "nope")

    def test_result_order_matches_input(self, sharded, small_trace):
        ids = small_trace.flows.ids[:100]
        fwd = sharded.estimate(ids)
        rev = sharded.estimate(ids[::-1])
        np.testing.assert_allclose(fwd, rev[::-1])

    def test_flows_partitioned_exclusively(self, sharded, small_trace):
        """A flow's mass lives in exactly one shard."""
        top = small_trace.flows.top(5)
        owners = sharded.shard_of(top.ids)
        for fid, owner, size in zip(top.ids, owners, top.sizes):
            own_est = sharded.shards[owner].estimate(
                np.array([fid], dtype=np.uint64), clip_negative=True
            )[0]
            assert own_est == pytest.approx(size, rel=0.3)
            for s, shard in enumerate(sharded.shards):
                if s == owner:
                    continue
                ghost = shard.estimate(
                    np.array([fid], dtype=np.uint64), clip_negative=True
                )[0]
                assert ghost < 0.5 * size


class TestMeasurementResultInternals:
    def test_top_flows_empty_measurement(self):
        # A single-packet stream still yields a queryable result.
        result = repro.measure(
            np.array([5], dtype=np.uint64), sram_kb=1.0, cache_kb=0.5
        )
        top = result.top_flows(3)
        assert len(top) == 1
        assert top[0][0] == 5

    def test_estimates_clipped(self, tiny_trace):
        result = repro.measure(tiny_trace.packets, sram_kb=0.5, cache_kb=0.5)
        est = result.estimate(tiny_trace.flows.ids)
        assert (est >= 0).all()

    def test_mlm_method_passthrough(self, tiny_trace):
        result = repro.measure(tiny_trace.packets, sram_kb=2.0, cache_kb=1.0)
        mlm = result.estimate(tiny_trace.flows.ids, method="mlm")
        csm = result.estimate(tiny_trace.flows.ids, method="csm")
        assert mlm.shape == csm.shape
        assert not np.array_equal(mlm, csm)
