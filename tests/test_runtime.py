"""Streaming runtime tests: bit-identity, crash recovery, backpressure.

The contract under test (docs/runtime.md): a ``StreamingRuntime`` run —
chunked ingest through bounded queues into ``W`` worker processes, with
any number of workers SIGKILLed along the way — finishes with per-shard
states (estimates *and* checkpoint digests) bit-identical to a
single-process ``ShardedCaesar.process`` of the same stream, on every
construction engine.
"""

import signal
import time

import numpy as np
import pytest

from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError, IngestError, TraceFormatError
from repro.obs.registry import MetricsRegistry
from repro.resilience.wal import WriteAheadLog
from repro.runtime import StreamPartitioner, chunk_stream
from repro.runtime.client import StreamingRuntime
from repro.runtime.worker import (
    WorkerSpec,
    append_ingest_chunk,
    boot_shard,
    decode_ingest_record,
)


def make_config(engine="batched", seed=5):
    return CaesarConfig(
        cache_entries=64,
        entry_capacity=16,
        k=3,
        bank_size=512,
        seed=seed,
        engine=engine,
    )


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(11)
    return rng.zipf(1.25, 12_000).astype(np.uint64) % 2048


@pytest.fixture(scope="module")
def flows(stream):
    return np.unique(stream)


def offline_baseline(config, num_shards, packets):
    base = ShardedCaesar(config, num_shards)
    base.process(packets)
    base.finalize()
    return base


def assert_matches_offline(rt_result, runtime, base, flows):
    """Full bit-identity between a drained runtime and the offline run."""
    base_digests = tuple(s.checkpoint().digest for s in base.shards)
    assert rt_result.shard_digests == base_digests
    np.testing.assert_array_equal(
        runtime.query(flows), base.estimate(flows, "csm", clip_negative=True)
    )
    twin = rt_result.load_scheme()
    np.testing.assert_array_equal(
        twin.estimate(flows, "csm", clip_negative=True),
        base.estimate(flows, "csm", clip_negative=True),
    )


class TestPartitioner:
    def test_matches_sharded_scheme_assignment(self, stream):
        sc = ShardedCaesar(make_config(), num_shards=4)
        part = StreamPartitioner(4)
        np.testing.assert_array_equal(part.shard_of(stream), sc.shard_of(stream))

    def test_partition_covers_every_packet_once(self, stream):
        part = StreamPartitioner(3)
        pieces = part.partition(stream, None)
        assert sum(len(p) for p, _ in pieces) == len(stream)
        np.testing.assert_array_equal(
            np.sort(np.concatenate([p for p, _ in pieces])), np.sort(stream)
        )

    def test_partition_keeps_lengths_aligned(self, stream):
        lengths = np.arange(len(stream), dtype=np.int64)
        part = StreamPartitioner(2)
        owners = part.shard_of(stream)
        for s, (pkts, lens) in enumerate(part.partition(stream, lengths)):
            np.testing.assert_array_equal(pkts, stream[owners == s])
            np.testing.assert_array_equal(lens, lengths[owners == s])

    def test_chunk_stream_flat_array(self, stream):
        chunks = list(chunk_stream(stream, chunk_packets=5000))
        assert [len(p) for p, _ in chunks] == [5000, 5000, 2000]
        np.testing.assert_array_equal(np.concatenate([p for p, _ in chunks]), stream)

    def test_chunk_stream_iterable_forms(self, stream):
        arrays = [stream[:100], stream[100:250]]
        out = list(chunk_stream(iter(arrays)))
        assert len(out) == 2 and out[1][1] is None
        pairs = [(stream[:100], np.ones(100, dtype=np.int64))]
        (pkts, lens), = list(chunk_stream(iter(pairs)))
        assert lens is not None and len(lens) == 100

    def test_chunk_stream_rejects_lengths_with_iterable(self, stream):
        with pytest.raises(ConfigError):
            list(chunk_stream(iter([stream]), lengths=np.ones(len(stream), np.int64)))


class TestIngestWal:
    def test_roundtrip(self, tmp_path, stream):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            append_ingest_chunk(wal, 0, stream[:50], None)
            append_ingest_chunk(wal, 1, stream[50:80], np.ones(30, np.int64))
        records = list(WriteAheadLog.iter_records(path))
        seq0, pkts0, lens0 = decode_ingest_record(records[0])
        assert seq0 == 0 and lens0 is None
        np.testing.assert_array_equal(pkts0, stream[:50])
        seq1, pkts1, lens1 = decode_ingest_record(records[1])
        assert seq1 == 1
        np.testing.assert_array_equal(lens1, np.ones(30, np.int64))

    def test_torn_tail_is_truncated_before_reuse(self, tmp_path, stream):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            append_ingest_chunk(wal, 0, stream[:40], None)
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03torn")  # crash mid-append
        removed = WriteAheadLog.truncate_torn_tail(path)
        assert removed == 7
        assert len(list(WriteAheadLog.iter_records(path))) == 1

    def test_boot_recovers_from_wal_only(self, tmp_path, stream):
        """No checkpoint on disk: boot replays the whole ingest WAL."""
        spec = WorkerSpec(shard_id=0, config=make_config(), state_dir=str(tmp_path))
        with WriteAheadLog(spec.wal_path) as wal:
            append_ingest_chunk(wal, 0, stream[:500], None)
            append_ingest_chunk(wal, 1, stream[500:900], None)
        scheme, last_seq, replayed = boot_shard(spec)
        assert (last_seq, replayed) == (1, 2)
        assert scheme.num_packets == 900

    def test_decode_rejects_headerless_record(self, tmp_path, stream):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append_chunk(
                stream[:4],
                np.zeros(4, np.int64),
                np.zeros(4, np.uint8),  # reason 0 != CHUNK_HEADER_REASON
            )
        (record,) = list(WriteAheadLog.iter_records(path))
        with pytest.raises(TraceFormatError):
            decode_ingest_record(record)


@pytest.mark.parametrize("engine", ["batched", "runs", "scalar"])
class TestBitIdentity:
    def test_runtime_matches_offline(self, tmp_path, stream, flows, engine):
        config = make_config(engine)
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(config, 2, state_dir=tmp_path) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            result = rt.drain()
            assert result.num_packets == len(stream)
            assert result.restarts == 0
            assert_matches_offline(result, rt, base, flows)


class TestRecovery:
    def test_sigkill_mid_stream_recovers_bit_identically(
        self, tmp_path, stream, flows
    ):
        config = make_config()
        base = offline_baseline(config, 2, stream)
        chunks = np.array_split(stream, 12)
        with StreamingRuntime(config, 2, state_dir=tmp_path, checkpoint_every=2) as rt:
            for i, chunk in enumerate(chunks):
                if i == 7:
                    rt.kill_worker(1)
                rt.ingest(chunk)
            result = rt.drain()
            assert result.restarts == 1
            assert result.num_packets == len(stream)
            assert_matches_offline(result, rt, base, flows)

    def test_recovery_without_checkpoints_replays_wal(self, tmp_path, stream, flows):
        """checkpoint_every=0: the restarted worker rebuilds purely from
        ingest-WAL replay plus supervisor re-feed."""
        config = make_config()
        base = offline_baseline(config, 2, stream)
        chunks = np.array_split(stream, 8)
        with StreamingRuntime(config, 2, state_dir=tmp_path, checkpoint_every=0) as rt:
            for i, chunk in enumerate(chunks):
                if i == 5:
                    rt.kill_worker(0)
                rt.ingest(chunk)
            result = rt.drain()
            assert result.restarts == 1
            assert_matches_offline(result, rt, base, flows)

    def test_pending_query_survives_worker_death(self, tmp_path, stream, flows):
        """A query outstanding when its worker dies is re-sent to the
        restarted worker and still answered."""
        config = make_config()
        with StreamingRuntime(config, 1, state_dir=tmp_path) as rt:
            rt.ingest(stream[:4000])
            rt.supervisor.ask(0, 999, flows[:4], "csm")
            rt.kill_worker(0)
            est = rt.supervisor.collect_reply(0, 999, timeout=60)
            assert est.shape == (4,)
            assert rt.restarts == 1

    def test_restart_budget_exhaustion_raises(self, tmp_path, stream):
        config = make_config()
        with StreamingRuntime(
            config, 1, state_dir=tmp_path, max_restarts=0
        ) as rt:
            rt.ingest(stream[:2000])
            rt.kill_worker(0)
            with pytest.raises(IngestError, match="max_restarts"):
                for _ in range(100):
                    rt.ingest(stream[:500])
                    time.sleep(0.01)


class TestBackpressure:
    def _stalled_runtime(self, tmp_path, policy, registry=None):
        rt = StreamingRuntime(
            make_config(),
            1,
            state_dir=tmp_path,
            queue_depth=1,
            backpressure=policy,
            registry=registry,
        ).start()
        # Freeze the consumer: the bounded queue must now fill.
        rt.kill_worker(0, signal.SIGSTOP)
        return rt

    def test_shed_drops_and_counts(self, tmp_path, stream):
        registry = MetricsRegistry()
        rt = self._stalled_runtime(tmp_path, "shed", registry)
        try:
            accepted = sum(rt.ingest(stream[:100]) for _ in range(10))
            assert accepted < 10 * 100
            assert registry.counter("runtime.backpressure.shed_chunks").value > 0
            rt.kill_worker(0, signal.SIGCONT)
            result = rt.drain()
            # Exactly the accepted packets were measured — sheds are real drops.
            assert result.num_packets == accepted
        finally:
            rt.kill_worker(0, signal.SIGCONT)
            rt.shutdown()

    def test_error_policy_raises_on_full_queue(self, tmp_path, stream):
        rt = self._stalled_runtime(tmp_path, "error")
        try:
            with pytest.raises(IngestError, match="queue is full"):
                for _ in range(10):
                    rt.ingest(stream[:100])
        finally:
            rt.kill_worker(0, signal.SIGCONT)
            rt.shutdown()

    def test_block_policy_records_stalls(self, tmp_path, stream):
        registry = MetricsRegistry()
        rt = StreamingRuntime(
            make_config(),
            1,
            state_dir=tmp_path,
            queue_depth=1,
            backpressure="block",
            registry=registry,
        ).start()
        try:
            rt.kill_worker(0, signal.SIGSTOP)
            # Unfreeze shortly after; the blocked put must ride it out.
            import threading

            threading.Timer(
                0.4, lambda: rt.kill_worker(0, signal.SIGCONT)
            ).start()
            for _ in range(8):
                assert rt.ingest(stream[:100]) == 100
            result = rt.drain()
            assert result.num_packets == 8 * 100
            assert registry.counter("runtime.backpressure.stalls").value > 0
        finally:
            rt.shutdown()

    def test_rejects_unknown_policy(self, tmp_path):
        with pytest.raises(ConfigError):
            StreamingRuntime(
                make_config(), 1, state_dir=tmp_path, backpressure="bogus"
            )


class TestLiveQueries:
    def test_queries_mid_ingest_then_exact_after_drain(
        self, tmp_path, stream, flows
    ):
        config = make_config()
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(config, 2, state_dir=tmp_path) as rt:
            rt.ingest(stream[:6000])
            live = rt.query(flows[:32])
            assert live.shape == (32,)
            assert np.all(np.isfinite(live))
            rt.ingest(stream[6000:])
            rt.drain()
            np.testing.assert_array_equal(
                rt.query(flows), base.estimate(flows, "csm", clip_negative=True)
            )


class TestLifecycle:
    def test_ingest_before_start_raises(self, tmp_path, stream):
        rt = StreamingRuntime(make_config(), 1, state_dir=tmp_path)
        with pytest.raises(IngestError, match="not started"):
            rt.ingest(stream[:10])

    def test_ingest_after_drain_raises(self, tmp_path, stream):
        with StreamingRuntime(make_config(), 1, state_dir=tmp_path) as rt:
            rt.ingest(stream[:1000])
            rt.drain()
            with pytest.raises(IngestError, match="drained"):
                rt.ingest(stream[:10])

    def test_drain_is_idempotent(self, tmp_path, stream):
        with StreamingRuntime(make_config(), 1, state_dir=tmp_path) as rt:
            rt.ingest(stream[:1000])
            assert rt.drain() is rt.drain()


class TestMeasureIntegration:
    """api.measure(stream=..., workers=...) rides the runtime."""

    def test_measure_stream_workers(self, stream, flows):
        import repro

        result = repro.measure(
            stream=stream, workers=2, sram_kb=4, cache_kb=2, chunk_packets=2000
        )
        assert isinstance(result, repro.StreamMeasurementResult)
        assert result.num_packets == len(stream)
        assert result.runtime.restarts == 0
        assert len(result.top_flows(5)) == 5
        est = result.estimate(flows)
        assert est.shape == flows.shape and np.all(est >= 0)

    def test_measure_rejects_both_inputs(self, stream):
        import repro

        with pytest.raises(ConfigError):
            repro.measure(stream[:10], stream=stream[:10], sram_kb=1, cache_kb=1)

    def test_measure_iterable_requires_expected_sizes(self, stream):
        import repro

        with pytest.raises(ConfigError, match="expected_packets"):
            repro.measure(stream=iter([stream]), sram_kb=1, cache_kb=1)
