"""Streaming runtime tests: bit-identity, crash recovery, backpressure.

The contract under test (docs/runtime.md): a ``StreamingRuntime`` run —
chunked ingest through a pluggable transport into ``W`` worker
processes, with any number of workers SIGKILLed along the way —
finishes with per-shard states (estimates *and* checkpoint digests)
bit-identical to a single-process ``ShardedCaesar.process`` of the same
stream, on every construction engine and every transport. Transport-
sensitive suites run twice: once over bounded pickled queues, once over
the zero-copy shared-memory rings.
"""

import signal

import numpy as np
import pytest

from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError, IngestError, TraceFormatError
from repro.obs.registry import MetricsRegistry
from repro.resilience.wal import WriteAheadLog
from repro.runtime import StreamPartitioner, chunk_stream
from repro.runtime.client import StreamingRuntime
from repro.runtime.queues import QueueTransport
from repro.runtime.shm import (
    CTRL_BYTES,
    KIND_CHUNK,
    RingConsumer,
    RingProducer,
    SharedMemoryRingTransport,
)
from repro.runtime.transport import resolve_transport
from repro.runtime.worker import (
    WorkerSpec,
    append_ingest_chunk,
    boot_shard,
    decode_ingest_record,
)
from tests.conftest import wait_until

TRANSPORTS = ["queue", "shm"]


def make_config(engine="batched", seed=5):
    return CaesarConfig(
        cache_entries=64,
        entry_capacity=16,
        k=3,
        bank_size=512,
        seed=seed,
        engine=engine,
    )


def tiny_transport(name):
    """A transport whose data plane fills after ~2 hundred-packet chunks
    (the backpressure tests freeze the consumer and need a fast fill)."""
    if name == "queue":
        return QueueTransport(queue_depth=1)
    return SharedMemoryRingTransport(ring_bytes=2048)


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(11)
    return rng.zipf(1.25, 12_000).astype(np.uint64) % 2048


@pytest.fixture(scope="module")
def flows(stream):
    return np.unique(stream)


def offline_baseline(config, num_shards, packets):
    base = ShardedCaesar(config, num_shards)
    base.process(packets)
    base.finalize()
    return base


def assert_matches_offline(rt_result, runtime, base, flows):
    """Full bit-identity between a drained runtime and the offline run."""
    base_digests = tuple(s.checkpoint().digest for s in base.shards)
    assert rt_result.shard_digests == base_digests
    np.testing.assert_array_equal(
        runtime.query(flows), base.estimate(flows, "csm", clip_negative=True)
    )
    twin = rt_result.load_scheme()
    np.testing.assert_array_equal(
        twin.estimate(flows, "csm", clip_negative=True),
        base.estimate(flows, "csm", clip_negative=True),
    )


class TestPartitioner:
    def test_matches_sharded_scheme_assignment(self, stream):
        sc = ShardedCaesar(make_config(), num_shards=4)
        part = StreamPartitioner(4)
        np.testing.assert_array_equal(part.shard_of(stream), sc.shard_of(stream))

    def test_partition_covers_every_packet_once(self, stream):
        part = StreamPartitioner(3)
        pieces = part.partition(stream, None)
        assert sum(len(p) for p, _ in pieces) == len(stream)
        np.testing.assert_array_equal(
            np.sort(np.concatenate([p for p, _ in pieces])), np.sort(stream)
        )

    def test_partition_keeps_lengths_aligned(self, stream):
        lengths = np.arange(len(stream), dtype=np.int64)
        part = StreamPartitioner(2)
        owners = part.shard_of(stream)
        for s, (pkts, lens) in enumerate(part.partition(stream, lengths)):
            np.testing.assert_array_equal(pkts, stream[owners == s])
            np.testing.assert_array_equal(lens, lengths[owners == s])

    def test_chunk_stream_flat_array(self, stream):
        chunks = list(chunk_stream(stream, chunk_packets=5000))
        assert [len(p) for p, _ in chunks] == [5000, 5000, 2000]
        np.testing.assert_array_equal(np.concatenate([p for p, _ in chunks]), stream)

    def test_chunk_stream_iterable_forms(self, stream):
        arrays = [stream[:100], stream[100:250]]
        out = list(chunk_stream(iter(arrays)))
        assert len(out) == 2 and out[1][1] is None
        pairs = [(stream[:100], np.ones(100, dtype=np.int64))]
        (pkts, lens), = list(chunk_stream(iter(pairs)))
        assert lens is not None and len(lens) == 100

    def test_chunk_stream_rejects_lengths_with_iterable(self, stream):
        with pytest.raises(ConfigError):
            list(chunk_stream(iter([stream]), lengths=np.ones(len(stream), np.int64)))


class TestIngestWal:
    def test_roundtrip(self, tmp_path, stream):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            append_ingest_chunk(wal, 0, stream[:50], None)
            append_ingest_chunk(wal, 1, stream[50:80], np.ones(30, np.int64))
        records = list(WriteAheadLog.iter_records(path))
        seq0, pkts0, lens0 = decode_ingest_record(records[0])
        assert seq0 == 0 and lens0 is None
        np.testing.assert_array_equal(pkts0, stream[:50])
        seq1, pkts1, lens1 = decode_ingest_record(records[1])
        assert seq1 == 1
        np.testing.assert_array_equal(lens1, np.ones(30, np.int64))

    def test_torn_tail_is_truncated_before_reuse(self, tmp_path, stream):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            append_ingest_chunk(wal, 0, stream[:40], None)
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03torn")  # crash mid-append
        removed = WriteAheadLog.truncate_torn_tail(path)
        assert removed == 7
        assert len(list(WriteAheadLog.iter_records(path))) == 1

    def test_boot_recovers_from_wal_only(self, tmp_path, stream):
        """No checkpoint on disk: boot replays the whole ingest WAL."""
        spec = WorkerSpec(shard_id=0, config=make_config(), state_dir=str(tmp_path))
        with WriteAheadLog(spec.wal_path) as wal:
            append_ingest_chunk(wal, 0, stream[:500], None)
            append_ingest_chunk(wal, 1, stream[500:900], None)
        scheme, last_seq, replayed = boot_shard(spec)
        assert (last_seq, replayed) == (1, 2)
        assert scheme.num_packets == 900

    def test_decode_rejects_headerless_record(self, tmp_path, stream):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append_chunk(
                stream[:4],
                np.zeros(4, np.int64),
                np.zeros(4, np.uint8),  # reason 0 != CHUNK_HEADER_REASON
            )
        (record,) = list(WriteAheadLog.iter_records(path))
        with pytest.raises(TraceFormatError):
            decode_ingest_record(record)


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("engine", ["batched", "runs", "scalar"])
class TestBitIdentity:
    def test_runtime_matches_offline(self, tmp_path, stream, flows, engine, transport):
        config = make_config(engine)
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(config, 2, state_dir=tmp_path, transport=transport) as rt:
            rt.ingest_stream(stream, chunk_packets=1500)
            result = rt.drain()
            assert result.num_packets == len(stream)
            assert result.restarts == 0
            assert_matches_offline(result, rt, base, flows)


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestRecovery:
    def test_sigkill_mid_stream_recovers_bit_identically(
        self, tmp_path, stream, flows, transport
    ):
        config = make_config()
        base = offline_baseline(config, 2, stream)
        chunks = np.array_split(stream, 12)
        with StreamingRuntime(
            config, 2, state_dir=tmp_path, transport=transport, checkpoint_every=2
        ) as rt:
            for i, chunk in enumerate(chunks):
                if i == 7:
                    rt.kill_worker(1)
                rt.ingest(chunk)
            result = rt.drain()
            assert result.restarts == 1
            assert result.num_packets == len(stream)
            assert_matches_offline(result, rt, base, flows)

    def test_recovery_without_checkpoints_replays_wal(
        self, tmp_path, stream, flows, transport
    ):
        """checkpoint_every=0: the restarted worker rebuilds purely from
        ingest-WAL replay plus supervisor re-feed."""
        config = make_config()
        base = offline_baseline(config, 2, stream)
        chunks = np.array_split(stream, 8)
        with StreamingRuntime(
            config, 2, state_dir=tmp_path, transport=transport, checkpoint_every=0
        ) as rt:
            for i, chunk in enumerate(chunks):
                if i == 5:
                    rt.kill_worker(0)
                rt.ingest(chunk)
            result = rt.drain()
            assert result.restarts == 1
            assert_matches_offline(result, rt, base, flows)

    def test_pending_query_survives_worker_death(
        self, tmp_path, stream, flows, transport
    ):
        """A query outstanding when its worker dies is re-sent to the
        restarted worker and still answered."""
        config = make_config()
        with StreamingRuntime(config, 1, state_dir=tmp_path, transport=transport) as rt:
            rt.ingest(stream[:4000])
            rt.supervisor.ask(0, 999, flows[:4], "csm")
            rt.kill_worker(0)
            est = rt.supervisor.collect_reply(0, 999, timeout=60)
            assert est.shape == (4,)
            assert rt.restarts == 1

    def test_restart_budget_exhaustion_raises(self, tmp_path, stream, transport):
        config = make_config()
        with StreamingRuntime(
            config, 1, state_dir=tmp_path, transport=transport, max_restarts=0
        ) as rt:
            rt.ingest(stream[:2000])
            rt.kill_worker(0)

            def poke() -> bool:
                # Each ingest pumps the supervisor; the pump that
                # notices the death raises (budget is zero). Deadline-
                # polled: kill delivery latency varies with load.
                rt.ingest(stream[:500])
                return False

            with pytest.raises(IngestError, match="max_restarts"):
                wait_until(poke, desc="restart-budget exhaustion")


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestBackpressure:
    def _stalled_runtime(self, tmp_path, transport, policy, registry=None):
        rt = StreamingRuntime(
            make_config(),
            1,
            state_dir=tmp_path,
            transport=tiny_transport(transport),
            backpressure=policy,
            registry=registry,
        ).start()
        # Freeze the consumer: the bounded data plane must now fill.
        rt.kill_worker(0, signal.SIGSTOP)
        return rt

    def test_shed_drops_and_counts(self, tmp_path, stream, transport):
        registry = MetricsRegistry()
        rt = self._stalled_runtime(tmp_path, transport, "shed", registry)
        try:
            accepted = sum(rt.ingest(stream[:100]) for _ in range(10))
            assert accepted < 10 * 100
            assert registry.counter("runtime.backpressure.shed_chunks").value > 0
            rt.kill_worker(0, signal.SIGCONT)
            result = rt.drain()
            # Exactly the accepted packets were measured — sheds are real drops.
            assert result.num_packets == accepted
        finally:
            rt.kill_worker(0, signal.SIGCONT)
            rt.shutdown()

    def test_error_policy_raises_on_full_channel(self, tmp_path, stream, transport):
        rt = self._stalled_runtime(tmp_path, transport, "error")
        try:
            with pytest.raises(IngestError, match="is full"):
                for _ in range(10):
                    rt.ingest(stream[:100])
        finally:
            rt.kill_worker(0, signal.SIGCONT)
            rt.shutdown()

    def test_block_policy_records_stalls(self, tmp_path, stream, transport):
        registry = MetricsRegistry()
        rt = StreamingRuntime(
            make_config(),
            1,
            state_dir=tmp_path,
            transport=tiny_transport(transport),
            backpressure="block",
            registry=registry,
        ).start()
        import threading

        ingested = threading.Event()

        def unfreeze() -> None:
            # Unfreeze the instant the producer actually stalls (no
            # fixed sleep: too short misses the stall, too long wastes
            # wall clock); bail out if all sends somehow fit.
            wait_until(
                lambda: ingested.is_set()
                or registry.counter("runtime.backpressure.stalls").value > 0,
                desc="first backpressure stall",
            )
            rt.kill_worker(0, signal.SIGCONT)

        try:
            rt.kill_worker(0, signal.SIGSTOP)
            resumer = threading.Thread(target=unfreeze, daemon=True)
            resumer.start()
            for _ in range(8):
                assert rt.ingest(stream[:100]) == 100
            ingested.set()
            resumer.join(timeout=30)
            result = rt.drain()
            assert result.num_packets == 8 * 100
            assert registry.counter("runtime.backpressure.stalls").value > 0
        finally:
            rt.shutdown()

    def test_rejects_unknown_policy(self, tmp_path, transport):
        with pytest.raises(ConfigError):
            StreamingRuntime(
                make_config(),
                1,
                state_dir=tmp_path,
                transport=transport,
                backpressure="bogus",
            )


class TestShmRing:
    """Unit tests of the SPSC ring itself — no processes involved."""

    def _ring_pair(self, capacity=512):
        buf = memoryview(bytearray(CTRL_BYTES + capacity))
        return RingProducer(buf, capacity), RingConsumer(buf, capacity)

    def test_roundtrip_one_record(self):
        prod, cons = self._ring_pair()
        payload = bytes(range(48))
        assert prod.try_write(KIND_CHUNK, 0, 7, 6, [payload], len(payload))
        kind, flags, seq, n, out = cons.try_read()
        assert (kind, flags, seq, n) == (KIND_CHUNK, 0, 7, 6)
        assert bytes(out) == payload
        assert cons.try_read() is None

    def test_wraparound_preserves_payloads(self):
        """Many records through a small ring: every byte survives the
        wrap filler machinery, in order."""
        prod, cons = self._ring_pair(capacity=512)
        rng = np.random.default_rng(3)
        for seq in range(200):
            payload = rng.integers(0, 256, size=int(rng.integers(1, 150))).astype(
                np.uint8
            )
            # Drain-as-needed: mimics producer waiting on the consumer.
            while not prod.try_write(
                KIND_CHUNK, 0, seq, len(payload), [payload], payload.nbytes
            ):
                rec = cons.try_read()
                assert rec is not None
            rec = cons.try_read()
            assert rec is not None
            kind, _flags, got_seq, n, out = rec
            assert kind == KIND_CHUNK and got_seq == seq and n == len(payload)
            np.testing.assert_array_equal(
                np.frombuffer(out, dtype=np.uint8), payload
            )
            assert prod.used() == 0  # fully drained, counters keep running

    def test_full_ring_rejects_write(self):
        prod, cons = self._ring_pair(capacity=128)
        payload = bytes(64)
        assert prod.try_write(KIND_CHUNK, 0, 0, 0, [payload], 64)
        assert not prod.try_write(KIND_CHUNK, 0, 1, 0, [payload], 64)
        assert cons.try_read() is not None
        assert prod.try_write(KIND_CHUNK, 0, 1, 0, [payload], 64)


class TestShmTransport:
    """Shared-memory specifics: fragmentation, segment lifecycle, sizing."""

    def test_oversized_chunk_fragments_bit_identically(self, tmp_path, stream, flows):
        """A chunk far larger than the whole ring streams through as
        FLAG_MORE fragments and the result stays bit-identical."""
        config = make_config()
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(
            config,
            2,
            state_dir=tmp_path,
            transport=SharedMemoryRingTransport(ring_bytes=4096),
        ) as rt:
            rt.ingest(stream)  # one 12k-packet chunk ≈ 96 KiB >> 4 KiB ring
            result = rt.drain()
            assert result.num_packets == len(stream)
            assert_matches_offline(result, rt, base, flows)

    def test_oversized_chunk_shed_drops_outright(self, tmp_path, stream):
        registry = MetricsRegistry()
        with StreamingRuntime(
            make_config(),
            1,
            state_dir=tmp_path,
            transport=SharedMemoryRingTransport(ring_bytes=2048),
            backpressure="shed",
            registry=registry,
        ) as rt:
            assert rt.ingest(stream[:4000]) == 0  # can never fit atomically
            assert registry.counter("runtime.backpressure.shed_packets").value == 4000
            assert rt.drain().num_packets == 0

    def test_oversized_chunk_error_raises(self, tmp_path, stream):
        with StreamingRuntime(
            make_config(),
            1,
            state_dir=tmp_path,
            transport=SharedMemoryRingTransport(ring_bytes=2048),
            backpressure="error",
        ) as rt:
            with pytest.raises(IngestError, match="record cap"):
                rt.ingest(stream[:4000])

    def test_segments_unlinked_after_shutdown(self, tmp_path, stream):
        from multiprocessing import shared_memory

        with StreamingRuntime(
            make_config(), 2, state_dir=tmp_path, transport="shm"
        ) as rt:
            rt.ingest(stream[:2000])
            names = [h.channel.segment_name for h in rt.supervisor.handles]
            assert all(names)
            rt.drain()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_crash_restart_swaps_and_unlinks_segment(self, tmp_path, stream):
        from multiprocessing import shared_memory

        with StreamingRuntime(
            make_config(), 1, state_dir=tmp_path, transport="shm"
        ) as rt:
            rt.ingest(stream[:2000])
            old = rt.supervisor.handles[0].channel.segment_name
            rt.kill_worker(0)

            def restarted() -> bool:
                rt.ingest(stream[:100])
                return rt.restarts > 0

            wait_until(restarted, desc="worker restart", interval=0.0)
            assert rt.restarts == 1
            new = rt.supervisor.handles[0].channel.segment_name
            assert new != old
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=old)

    def test_batched_acks_empty_retention_after_drain(self, tmp_path, stream):
        """With batching, retention may lag ack_every chunks mid-run but
        the drain-time ack flush must empty it on every shard."""
        with StreamingRuntime(
            make_config(),
            2,
            state_dir=tmp_path,
            transport="shm",
            ack_every=5,
            checkpoint_every=0,
        ) as rt:
            rt.ingest_stream(stream, chunk_packets=700)
            rt.drain()
            rt.supervisor.pump()
            assert all(not h.retained for h in rt.supervisor.handles)


class TestTransportSelection:
    def test_rejects_unknown_transport(self, tmp_path):
        with pytest.raises(ConfigError, match="transport"):
            StreamingRuntime(make_config(), 1, state_dir=tmp_path, transport="bogus")

    def test_resolve_passes_instances_through(self):
        t = QueueTransport(queue_depth=3)
        assert resolve_transport(t) is t

    def test_queue_depth_must_be_positive(self):
        with pytest.raises(IngestError, match="queue_depth"):
            QueueTransport(queue_depth=0)

    def test_ring_bytes_must_be_sane(self):
        with pytest.raises(IngestError, match="ring_bytes"):
            SharedMemoryRingTransport(ring_bytes=16)


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestLiveQueries:
    def test_queries_mid_ingest_then_exact_after_drain(
        self, tmp_path, stream, flows, transport
    ):
        config = make_config()
        base = offline_baseline(config, 2, stream)
        with StreamingRuntime(config, 2, state_dir=tmp_path, transport=transport) as rt:
            rt.ingest(stream[:6000])
            live = rt.query(flows[:32])
            assert live.shape == (32,)
            assert np.all(np.isfinite(live))
            rt.ingest(stream[6000:])
            rt.drain()
            np.testing.assert_array_equal(
                rt.query(flows), base.estimate(flows, "csm", clip_negative=True)
            )


class TestLifecycle:
    def test_ingest_before_start_raises(self, tmp_path, stream):
        rt = StreamingRuntime(make_config(), 1, state_dir=tmp_path)
        with pytest.raises(IngestError, match="not started"):
            rt.ingest(stream[:10])

    def test_ingest_after_drain_raises(self, tmp_path, stream):
        with StreamingRuntime(make_config(), 1, state_dir=tmp_path) as rt:
            rt.ingest(stream[:1000])
            rt.drain()
            with pytest.raises(IngestError, match="drained"):
                rt.ingest(stream[:10])

    def test_drain_is_idempotent(self, tmp_path, stream):
        with StreamingRuntime(make_config(), 1, state_dir=tmp_path) as rt:
            rt.ingest(stream[:1000])
            assert rt.drain() is rt.drain()


class TestMeasureIntegration:
    """api.measure(stream=..., workers=...) rides the runtime."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_measure_stream_workers(self, stream, flows, transport):
        import repro

        result = repro.measure(
            stream=stream,
            workers=2,
            transport=transport,
            sram_kb=4,
            cache_kb=2,
            chunk_packets=2000,
        )
        assert isinstance(result, repro.StreamMeasurementResult)
        assert result.num_packets == len(stream)
        assert result.runtime.restarts == 0
        assert len(result.top_flows(5)) == 5
        est = result.estimate(flows)
        assert est.shape == flows.shape and np.all(est >= 0)

    def test_measure_rejects_both_inputs(self, stream):
        import repro

        with pytest.raises(ConfigError):
            repro.measure(stream[:10], stream=stream[:10], sram_kb=1, cache_kb=1)

    def test_measure_iterable_requires_expected_sizes(self, stream):
        import repro

        with pytest.raises(ConfigError, match="expected_packets"):
            repro.measure(stream=iter([stream]), sram_kb=1, cache_kb=1)

    def test_measure_transport_requires_workers(self, stream):
        import repro

        with pytest.raises(ConfigError, match="workers"):
            repro.measure(stream=stream, transport="shm", sram_kb=1, cache_kb=1)

    def test_measure_transport_requires_stream(self, stream):
        import repro

        with pytest.raises(ConfigError, match="stream="):
            repro.measure(stream[:100], transport="shm", sram_kb=1, cache_kb=1)
