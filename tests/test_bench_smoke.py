"""Benchmark-suite smoke tests.

The micro-benchmarks are part of the reproduction artifact (CI publishes
``BENCH_micro.json``), so they must stay runnable, and the checked-in
results file must stay in sync with the bench functions it claims to
describe. Timing itself is *not* asserted here — only that the suite
collects, runs on a tiny workload, and emits/validates the expected
schema.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_micro.py"
BENCH_JSON = REPO_ROOT / "BENCH_micro.json"

#: stats fields pytest-benchmark guarantees per benchmark entry.
REQUIRED_STATS = ("min", "max", "mean", "stddev", "median", "rounds")


def _bench_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_SCALE"] = "0.003"
    return env


def _defined_bench_names() -> set[str]:
    import ast

    tree = ast.parse(BENCH_FILE.read_text())
    return {
        node.name
        for node in tree.body
        if isinstance(node, ast.FunctionDef) and node.name.startswith("bench_")
    }


class TestBenchResultsSchema:
    @pytest.fixture(scope="class")
    def results(self) -> dict:
        return json.loads(BENCH_JSON.read_text())

    def test_top_level_shape(self, results):
        for key in ("machine_info", "benchmarks", "datetime", "version"):
            assert key in results, key
        assert isinstance(results["benchmarks"], list) and results["benchmarks"]

    def test_each_entry_has_positive_stats(self, results):
        for entry in results["benchmarks"]:
            assert entry["name"].startswith("bench_"), entry["name"]
            stats = entry["stats"]
            for field in REQUIRED_STATS:
                assert field in stats, f"{entry['name']} missing {field}"
            assert stats["min"] > 0
            assert stats["min"] <= stats["mean"] <= stats["max"]
            assert stats["rounds"] >= 1

    def test_recorded_benches_still_exist(self, results):
        """Every bench the artifact describes must still be defined —
        a rename/removal must come with a regenerated BENCH_micro.json."""
        recorded = {entry["name"] for entry in results["benchmarks"]}
        assert recorded <= _defined_bench_names(), (
            "BENCH_micro.json is stale: "
            f"{sorted(recorded - _defined_bench_names())}"
        )

    def test_engine_and_metrics_benches_recorded(self, results):
        recorded = {entry["name"] for entry in results["benchmarks"]}
        assert "bench_caesar_construction_scalar" in recorded
        assert "bench_caesar_construction_batched" in recorded

    def test_run_kernel_benches_recorded(self, results):
        """The run-kernel/per-packet pairs back the speedup claims in
        docs/performance.md and the CI regression guard — all six must
        be present in the artifact."""
        recorded = {entry["name"] for entry in results["benchmarks"]}
        for stream in ("zipf", "bursty", "uniform"):
            assert f"bench_run_kernel_{stream}" in recorded, stream
            assert f"bench_packet_loop_{stream}" in recorded, stream

    def test_runtime_transport_benches_recorded(self, results):
        """Both transports' worker-scaling curves must be in the
        artifact — 1/2/4 workers each over queues and shm rings."""
        recorded = {entry["name"] for entry in results["benchmarks"]}
        for w in (1, 2, 4):
            assert f"bench_runtime_ingest_{w}w" in recorded, w
            assert f"bench_runtime_ingest_{w}w_shm" in recorded, w

    def test_shm_workers_scale_forward(self, results):
        """The point of the zero-copy transport: with pickling off the
        hot path, four shard workers must beat one (smaller per-shard
        structures), not lose to transport overhead.

        Compared on the median: the CI box shares its core with other
        processes whose bursts produce large one-sided outliers, which
        the mean of a handful of rounds inherits and the median does
        not."""
        stats = {
            entry["name"]: entry["stats"] for entry in results["benchmarks"]
        }
        assert (
            stats["bench_runtime_ingest_4w_shm"]["median"]
            < stats["bench_runtime_ingest_1w_shm"]["median"]
        ), "shm 4-worker ingest is not faster than 1-worker"

    def test_checkpoint_benches_recorded(self, results):
        """The durability-cadence trio backing docs/resilience.md: sync
        (baseline stall), async (background write), delta (incremental
        background write) at a checkpoint-per-chunk cadence."""
        recorded = {entry["name"] for entry in results["benchmarks"]}
        for mode in ("sync", "async", "delta"):
            assert f"bench_checkpoint_{mode}" in recorded, mode

    def test_async_checkpoint_off_hot_path(self, results):
        """The point of the background writer: at an identical cadence,
        ingest+drain with async checkpoints must be materially faster
        than with synchronous ones, because compression and fsync
        overlap the next chunk instead of stalling it.

        Compared on the median for the same reason as the shm scaling
        assert — CI-box bursts produce one-sided outliers that a
        handful-of-rounds mean inherits."""
        stats = {
            entry["name"]: entry["stats"] for entry in results["benchmarks"]
        }
        assert (
            stats["bench_checkpoint_async"]["median"]
            < stats["bench_checkpoint_sync"]["median"]
        ), "async checkpointing is not faster than sync at equal cadence"

    def test_artifact_built_from_clean_tree(self, results):
        """A benchmark artifact recorded against uncommitted edits is
        unreproducible — reject it so regeneration happens post-commit."""
        commit = results["commit_info"]
        assert commit["dirty"] is False, (
            "BENCH_micro.json was generated from a dirty working tree "
            f"(commit {commit.get('id', '?')}); regenerate it after "
            "committing."
        )


class TestBenchSuiteRuns:
    def test_whole_suite_collects(self):
        proc = subprocess.run(
            # -o addopts= neutralizes the repo's "-q" so node ids print
            [sys.executable, "-m", "pytest", str(BENCH_FILE),
             "--collect-only", "-q", "-o", "addopts="],
            env=_bench_env(), capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        for name in _defined_bench_names():
            assert name in proc.stdout, f"{name} not collected"

    def test_subset_runs_on_tiny_workload(self):
        """Run the cheap benches (plus the metrics-overhead one) with
        timing disabled — each function executes exactly once."""
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(BENCH_FILE),
                "--benchmark-disable", "-q", "-p", "no:cacheprovider",
                "-k", "split or banked or metrics_enabled or bitpacked"
                      " or run_kernel_zipf",
            ],
            env=_bench_env(), capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "failed" not in proc.stdout
