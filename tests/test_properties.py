"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.compression.anls import AnlsCurve
from repro.baselines.compression.disco import DiscoCurve
from repro.cachesim.cache import FlowCache
from repro.core.csm import csm_estimate
from repro.core.mlm import mlm_estimate
from repro.core.split import split_evenly, split_value, split_values_batch
from repro.hashing.family import BankedIndexer, HashFamily
from repro.hashing.mix import splitmix64, splitmix64_array


# -- hashing ----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_splitmix_range_and_determinism(x):
    out = splitmix64(x)
    assert 0 <= out < 2**64
    assert out == splitmix64(x)


@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=50))
def test_splitmix_array_consistent_with_scalar(xs):
    arr = splitmix64_array(np.array(xs, dtype=np.uint64))
    assert [int(v) for v in arr] == [splitmix64(x) for x in xs]


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=0, max_value=2**64 - 1),
)
def test_banked_indexer_invariants(k, bank_size, flow_id):
    idx = BankedIndexer(k, bank_size, seed=7)
    rows = idx.indices_one(flow_id)
    assert len(set(rows.tolist())) == k  # collision-free
    for r in range(k):
        assert r * bank_size <= rows[r] < (r + 1) * bank_size


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32))
def test_hash_family_functions_stable(k, x):
    fam = HashFamily(k, seed=3)
    assert [fam.hash_one(r, x) for r in range(k)] == [fam.hash_one(r, x) for r in range(k)]


# -- splitting -----------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31),
)
def test_split_value_conserves_mass(value, k, seed):
    rng = np.random.default_rng(seed)
    parts = split_value(value, k, rng)
    assert parts.sum() == value
    assert len(parts) == k
    p = value // k
    assert parts.min() >= p
    assert parts.max() <= p + (value % k)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=8))
def test_split_evenly_conserves_and_balances(value, k):
    parts = split_evenly(value, k)
    assert parts.sum() == value
    assert parts.max() - parts.min() <= 1


@given(
    st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
def test_split_batch_conserves_mass(values, k, seed):
    rng = np.random.default_rng(seed)
    arr = np.array(values, dtype=np.int64)
    out = split_values_batch(arr, k, rng)
    np.testing.assert_array_equal(out.sum(axis=1), arr)
    assert (out >= 0).all()


# -- cache ----------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=2, max_value=20),
    st.sampled_from(["lru", "random"]),
)
@settings(max_examples=60, deadline=None)
def test_cache_conserves_packets(stream, entries, capacity, policy):
    """No packet is ever lost or duplicated by the cache, for any
    arrival pattern, table size, entry capacity, and policy."""
    cache = FlowCache(entries, capacity, policy=policy, seed=1)
    flushed: dict[int, int] = {}

    def sink(fid, value, reason):
        assert value > 0
        flushed[fid] = flushed.get(fid, 0) + value

    cache.process(np.array(stream, dtype=np.uint64), sink)
    cache.dump(sink)
    truth: dict[int, int] = {}
    for fid in stream:
        truth[fid] = truth.get(fid, 0) + 1
    assert flushed == truth
    assert cache.stats.accesses == len(stream)
    assert cache.stats.hits + cache.stats.misses == len(stream)


@given(
    st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=200),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_cache_never_exceeds_capacity(stream, entries):
    cache = FlowCache(entries, 5, policy="lru")

    def sink(fid, value, reason):
        pass

    for fid in stream:
        cache.access(int(fid), sink)
        assert len(cache) <= entries


# -- estimators --------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=6),
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=1, max_value=10**5),
)
def test_csm_linear_identity(counters, n, bank):
    w = np.array([counters], dtype=np.int64)
    est = csm_estimate(w, n, bank)
    assert est[0] == float(sum(counters)) - n / bank


@given(
    st.lists(st.integers(min_value=0, max_value=10**5), min_size=2, max_size=6),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=10**4),
    st.integers(min_value=2, max_value=1000),
)
def test_mlm_bounded_by_counter_sum(counters, n, bank, y):
    """MLM never exceeds what the counters could possibly hold."""
    w = np.array([counters], dtype=np.float64)
    est = mlm_estimate(w, n, bank, entry_capacity=y)
    k = len(counters)
    assert est[0] <= k * np.sqrt(k * (w**2).sum()) / 2 + 1e-6


@given(
    st.integers(min_value=1, max_value=10**6),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=1000),
)
def test_mlm_equals_truth_when_noise_free(x, k, y):
    """With all counters exactly x/k and no noise term, MLM recovers x
    to within its (k-1)^2/y regularization."""
    w = np.full((1, k), x / k)
    est = mlm_estimate(w, 0, 10**6, entry_capacity=y)
    assert abs(est[0] - x) <= (k - 1) ** 2 / y + 1e-6


# -- compression curves ---------------------------------------------------------------


@given(
    st.floats(min_value=1.0, max_value=5.0),
    st.integers(min_value=2, max_value=1000),
    st.floats(min_value=10.0, max_value=1e7),
)
def test_disco_inverse_roundtrip(gamma, capacity, max_value):
    curve = DiscoCurve(gamma, capacity, max_value)
    cs = np.linspace(0, capacity, 17)
    np.testing.assert_allclose(curve.inverse(curve.rep(cs)), cs, rtol=1e-6, atol=1e-9)


@given(st.floats(min_value=1e-6, max_value=5.0))
def test_anls_monotone_and_invertible(omega):
    curve = AnlsCurve(omega)
    cs = np.linspace(0, 60, 40)
    reps = curve.rep(cs)
    assert np.all(np.diff(reps) > 0)
    np.testing.assert_allclose(curve.inverse(reps), cs, rtol=1e-6, atol=1e-6)


@given(st.integers(min_value=8, max_value=128), st.floats(min_value=100, max_value=1e6))
def test_anls_calibration_covers_range(capacity, max_value):
    curve = AnlsCurve.for_range(capacity, max_value)
    assert curve.rep(np.array([float(capacity)]))[0] >= max_value * 0.999
