"""Additional ingress-pipeline scenarios for the analytic model."""

import pytest

from repro.memmodel.costmodel import OperationCounts
from repro.memmodel.pipeline import IngressModel
from repro.memmodel.technologies import LatencyModel


def counts(packets, front_cache=0, front_hash=0, front_power=0,
           back_hash=0, back_power=0, back_sram=0):
    return OperationCounts(
        packets=packets,
        front_cache_accesses=front_cache,
        front_hashes=front_hash,
        front_power_ops=front_power,
        back_hashes=back_hash,
        back_power_ops=back_power,
        back_sram_rmws=back_sram,
    )


class TestFrontBackBoundaries:
    def test_pure_front_bound(self):
        model = IngressModel(LatencyModel(), fifo_depth=100)
        res = model.process(counts(1000, front_power=1000))  # 4 ns/pkt
        assert res.ingress_ns == pytest.approx(4000)
        assert res.drain_ns == pytest.approx(4000)
        assert res.back_ns_per_packet == 0.0

    def test_pure_arrival_bound(self):
        model = IngressModel(LatencyModel(), fifo_depth=100)
        res = model.process(counts(1000, front_cache=1000))  # 1 ns/pkt = line
        assert res.ingress_ns == pytest.approx(1000)

    def test_back_bound_with_deep_fifo_hides_everything(self):
        model = IngressModel(LatencyModel(), fifo_depth=10**9)
        res = model.process(counts(1000, front_hash=1000, back_sram=1000))
        # Infinite FIFO: ingress never stalls on the back end.
        assert res.ingress_ns == pytest.approx(1000)
        # But draining still takes the SRAM time.
        assert res.drain_ns == pytest.approx(10_000)

    def test_zero_fifo_serializes(self):
        model = IngressModel(LatencyModel(), fifo_depth=0)
        res = model.process(counts(1000, front_hash=1000, back_sram=1000))
        assert res.ingress_ns == pytest.approx(10_000)

    def test_crossover_point_scales_with_fifo(self):
        lat = LatencyModel()
        shallow = IngressModel(lat, fifo_depth=1_000)
        deep = IngressModel(lat, fifo_depth=50_000)
        n = 30_000
        c = counts(n, front_hash=n, back_sram=n)
        assert shallow.process(c).ingress_ns > deep.process(c).ingress_ns

    def test_empty_stream(self):
        model = IngressModel(LatencyModel())
        res = model.process(counts(0))
        assert res.ingress_ns == 0.0
        assert res.loss_rate == 0.0
        assert res.throughput_mpps == 0.0

    def test_mixed_front_and_back(self):
        lat = LatencyModel()
        model = IngressModel(lat, fifo_depth=10)
        n = 10_000
        res = model.process(counts(n, front_power=n, back_sram=n))
        # Front takes 4n, back takes 10n; shallow FIFO -> back governs.
        assert res.ingress_ns == pytest.approx(10 * n, rel=0.01)


class TestLatencyModelVariants:
    def test_faster_sram_reduces_rcs_gap(self):
        n = 100_000
        c = counts(n, front_hash=n, back_sram=n)
        slow = IngressModel(LatencyModel(sram_access_ns=10.0), fifo_depth=100).process(c)
        fast = IngressModel(LatencyModel(sram_access_ns=3.0), fifo_depth=100).process(c)
        assert fast.ingress_ns < slow.ingress_ns
        assert fast.loss_rate < slow.loss_rate

    def test_dram_regime(self):
        """With DRAM latencies the paper's architecture argument only
        sharpens: per-packet updates lose 39/40 of the traffic."""
        lat = LatencyModel(sram_access_ns=40.0)
        res = IngressModel(lat, fifo_depth=100).process(
            counts(100_000, front_hash=100_000, back_sram=100_000)
        )
        assert res.loss_rate == pytest.approx(1 - 1 / 40)
