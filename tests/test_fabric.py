"""Tests for the multi-vantage measurement fabric.

The two headline contracts from docs/fabric.md:

- a degenerate one-vantage fabric is bit-identical to plain
  ``ShardedCaesar`` — estimates *and* per-shard checkpoint digests —
  across all three construction engines;
- on a 6-node PATH topology, MLE fusion achieves lower mean relative
  error than the best single vantage on the seeded Zipf trace.

Plus the fusion math properties (permutation invariance over vantage
order, NaN/degraded handling), topology routing invariants, sampling
determinism, and drain-order independence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError, QueryError
from repro.fabric import (
    Fabric,
    VantageObservation,
    VantagePoint,
    fat_tree_topology,
    fuse,
    fuse_ivw,
    fuse_min,
    fuse_mle,
    fusion_report,
    parse_topology,
    path_topology,
    tree_topology,
    vantage_caesar_config,
)
from repro.traffic.trace import default_paper_trace


def make_config(trace, **overrides):
    defaults = dict(
        cache_entries=max(16, trace.num_flows // 4),
        entry_capacity=max(2, int(2 * trace.mean_flow_size)),
        k=3,
        bank_size=max(128, trace.num_flows),
        seed=31,
    )
    defaults.update(overrides)
    return CaesarConfig(**defaults)


# -- topology ----------------------------------------------------------------


class TestTopology:
    def test_path_routes_are_contiguous_segments(self):
        topo = path_topology(5)
        for i in range(5):
            for e in range(5):
                route = topo.routes[i * 5 + e]
                assert route == tuple(range(min(i, e), max(i, e) + 1))

    def test_tree_routes_go_through_lca(self):
        topo = tree_topology(2, 2)  # 7 nodes, leaves 3..6
        assert topo.num_nodes == 7
        assert list(topo.entry_nodes) == [3, 4, 5, 6]
        # Siblings meet at their parent; cousins at the root.
        leaves = list(topo.entry_nodes)
        pair = lambda a, b: leaves.index(a) * 4 + leaves.index(b)
        assert topo.routes[pair(3, 4)] == (3, 1, 4)
        assert topo.routes[pair(3, 6)] == (3, 1, 0, 2, 6)
        assert topo.routes[pair(5, 5)] == (5,)

    def test_fat_tree_routes_are_valid(self):
        topo = fat_tree_topology(4)  # 4 edges, 4 aggs, 2 cores
        assert topo.num_nodes == 10
        for p, route in enumerate(topo.routes):
            src, dst = p // 4, p % 4
            assert route[0] == src and route[-1] == dst
            if src == dst:
                assert route == (src,)
            elif src // 2 == dst // 2:  # same pod: edge-agg-edge
                assert len(route) == 3 and 4 <= route[1] < 8
            else:  # cross pod: via a core
                assert len(route) == 5 and route[2] >= 8

    def test_pair_assignment_deterministic_and_in_range(self):
        topo = path_topology(6)
        ids = np.arange(1, 500, dtype=np.uint64)
        a, b = topo.pair_of(ids), topo.pair_of(ids)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < topo.num_pairs

    def test_observation_matrix_matches_routes(self):
        topo = tree_topology(2, 3)
        for p, route in enumerate(topo.routes):
            observed = set(np.flatnonzero(topo.observation_matrix[p]))
            assert observed == set(route)

    def test_parse_specs(self):
        assert parse_topology("PATH:6").name == "PATH:6"
        assert parse_topology("TREE:2x3").name == "TREE:2x3"
        assert parse_topology("tree:2X3").name == "TREE:2x3"
        assert parse_topology("FAT-TREE:4").name == "FAT-TREE:4"
        assert parse_topology("FATTREE:4").name == "FAT-TREE:4"

    @pytest.mark.parametrize(
        "spec", ["PATH", "PATH:", "RING:4", "TREE:3", "PATH:x", "TREE:axb"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigError):
            parse_topology(spec)

    def test_route_lengths_reported(self):
        topo = path_topology(4)
        ids = np.arange(1, 200, dtype=np.uint64)
        hops = topo.vantages_per_flow(ids)
        assert hops.min() >= 1 and hops.max() <= 4


# -- fusion math -------------------------------------------------------------


def observation_sets(draw):
    """A list of consistent VantageObservations with random NaN holes."""
    num_flows = draw(st.integers(min_value=1, max_value=12))
    num_vantages = draw(st.integers(min_value=1, max_value=5))
    obs = []
    for v in range(num_vantages):
        est = np.array(
            draw(
                st.lists(
                    st.one_of(
                        st.floats(
                            min_value=-50.0, max_value=1e4, allow_nan=False
                        ),
                        st.just(float("nan")),
                    ),
                    min_size=num_flows,
                    max_size=num_flows,
                )
            )
        )
        slope = np.array(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                    min_size=num_flows,
                    max_size=num_flows,
                )
            )
        )
        floor = np.array(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=num_flows,
                    max_size=num_flows,
                )
            )
        )
        obs.append(
            VantageObservation(
                vantage=v, estimates=est, var_slope=slope, var_floor=floor
            )
        )
    return obs


@st.composite
def observations_strategy(draw):
    return observation_sets(draw)


class TestFusionProperties:
    @settings(max_examples=60, deadline=None)
    @given(obs=observations_strategy(), data=st.data())
    def test_fusers_permutation_invariant(self, obs, data):
        """All three fusers are bit-identical under any permutation of
        the vantage observation list — the drain-order half of the
        determinism contract."""
        perm = data.draw(st.permutations(obs))
        for fuser in (fuse_min, fuse_ivw, fuse_mle):
            base = fuser(obs)
            shuffled = fuser(perm)
            np.testing.assert_array_equal(base, shuffled)

    @settings(max_examples=30, deadline=None)
    @given(obs=observations_strategy())
    def test_single_observation_passes_through_exactly(self, obs):
        """Flows one vantage observed fuse to that estimate bit-exactly
        (the one-vantage bit-identity contract rides on this)."""
        est = np.stack([o.estimates for o in obs])
        mask = np.isfinite(est)
        single = mask.sum(axis=0) == 1
        expected = np.where(mask, est, 0.0).sum(axis=0)
        for fuser in (fuse_min, fuse_ivw, fuse_mle):
            fused = fuser(obs)
            np.testing.assert_array_equal(fused[single], expected[single])
            # All-NaN flows (no observer) fuse to NaN.
            assert np.isnan(fused[~mask.any(axis=0)]).all()

    def test_min_is_elementwise_minimum(self):
        a = VantageObservation(
            vantage=0,
            estimates=np.array([3.0, np.nan, 7.0]),
            var_slope=np.zeros(3),
            var_floor=np.ones(3),
        )
        b = VantageObservation(
            vantage=1,
            estimates=np.array([5.0, 2.0, np.nan]),
            var_slope=np.zeros(3),
            var_floor=np.ones(3),
        )
        np.testing.assert_array_equal(fuse_min([a, b]), [3.0, 2.0, 7.0])

    def test_ivw_weights_by_inverse_variance(self):
        # Equal floors, zero slope: ivw is the plain mean; quadruple
        # one variance and the weighted mean shifts toward the other.
        def obs(v, est, floor):
            n = len(est)
            return VantageObservation(
                vantage=v,
                estimates=np.asarray(est, dtype=float),
                var_slope=np.zeros(n),
                var_floor=np.full(n, float(floor)),
            )

        even = fuse_ivw([obs(0, [10.0], 1.0), obs(1, [20.0], 1.0)])
        assert even[0] == pytest.approx(15.0)
        skewed = fuse_ivw([obs(0, [10.0], 1.0), obs(1, [20.0], 4.0)])
        assert skewed[0] == pytest.approx(12.0)

    def test_mle_reduces_to_ivw_for_constant_variance(self):
        rng = np.random.default_rng(0)
        est = rng.normal(100.0, 5.0, size=(4, 9))
        obs = [
            VantageObservation(
                vantage=v,
                estimates=est[v],
                var_slope=np.zeros(9),
                var_floor=np.full(9, 2.0 + v),
            )
            for v in range(4)
        ]
        np.testing.assert_allclose(fuse_mle(obs), fuse_ivw(obs), rtol=1e-12)

    def test_duplicate_vantage_ids_rejected(self):
        o = VantageObservation(
            vantage=0,
            estimates=np.array([1.0]),
            var_slope=np.zeros(1),
            var_floor=np.ones(1),
        )
        with pytest.raises(ConfigError):
            fuse([o, o])

    def test_empty_observations_rejected(self):
        with pytest.raises(QueryError):
            fuse([])

    def test_unknown_method_rejected(self):
        o = VantageObservation(
            vantage=0,
            estimates=np.array([1.0]),
            var_slope=np.zeros(1),
            var_floor=np.ones(1),
        )
        with pytest.raises(ConfigError):
            fuse([o], "median")

    def test_fusion_report_scopes_vantages_to_observed_flows(self):
        truth = np.array([10, 100])
        a = VantageObservation(
            vantage=0,
            estimates=np.array([11.0, np.nan]),
            var_slope=np.zeros(2),
            var_floor=np.ones(2),
        )
        b = VantageObservation(
            vantage=1,
            estimates=np.array([np.nan, 150.0]),
            var_slope=np.zeros(2),
            var_floor=np.ones(2),
        )
        fused = fuse([a, b], "ivw")
        report = fusion_report(truth, [a, b], fused, method="ivw")
        assert report.per_vantage_flows == {0: 1, 1: 1}
        assert report.per_vantage_are[0] == pytest.approx(0.1)
        assert report.per_vantage_are[1] == pytest.approx(0.5)
        assert report.best_vantage == 0
        assert report.fused_flows == 2


# -- vantage seeding ---------------------------------------------------------


class TestVantageConfig:
    def test_node_zero_keeps_base_config(self, tiny_trace):
        cfg = make_config(tiny_trace)
        assert vantage_caesar_config(cfg, 0) is cfg

    def test_nodes_get_distinct_seeds(self, tiny_trace):
        cfg = make_config(tiny_trace)
        seeds = {vantage_caesar_config(cfg, v).seed for v in range(8)}
        assert len(seeds) == 8

    def test_negative_node_rejected(self, tiny_trace):
        with pytest.raises(ConfigError):
            vantage_caesar_config(make_config(tiny_trace), -1)

    def test_runtime_options_require_workers(self, tiny_trace):
        with pytest.raises(ConfigError):
            VantagePoint(
                0,
                make_config(tiny_trace),
                runtime_options={"transport": "queue"},
            )


# -- one-vantage bit-identity ------------------------------------------------


class TestOneVantageBitIdentity:
    @pytest.mark.parametrize("engine", ["scalar", "batched", "runs"])
    def test_matches_sharded_caesar_across_engines(self, tiny_trace, engine):
        """The headline contract: a degenerate fabric IS a ShardedCaesar
        — same estimates, same per-shard checkpoint digests — for every
        construction engine."""
        cfg = make_config(tiny_trace, engine=engine)
        fabric = Fabric(cfg, path_topology(1), shards_per_vantage=2)
        fabric.ingest_stream(tiny_trace.packets, chunk_packets=1000)
        result = fabric.drain()

        base = ShardedCaesar(cfg, 2)
        base.process(tiny_trace.packets)
        base.finalize()

        ids = tiny_trace.flows.ids
        np.testing.assert_array_equal(
            fabric.query(ids), base.estimate(ids, "csm", clip_negative=False)
        )
        base_digests = tuple(s.checkpoint().digest for s in base.shards)
        assert result.shard_digests == (base_digests,)
        assert result.num_packets == tiny_trace.num_packets
        assert result.observed_packets == (tiny_trace.num_packets,)

    def test_every_fusion_method_degenerates_identically(self, tiny_trace):
        cfg = make_config(tiny_trace)
        fabric = Fabric(cfg, path_topology(1))
        fabric.ingest(tiny_trace.packets)
        base = ShardedCaesar(cfg, 1)
        base.process(tiny_trace.packets)
        base.finalize()
        expected = base.estimate(tiny_trace.flows.ids, "csm", clip_negative=False)
        for method in ("min", "ivw", "mle"):
            np.testing.assert_array_equal(
                fabric.query(tiny_trace.flows.ids, fusion=method), expected
            )


# -- fabric pipeline ---------------------------------------------------------


class TestFabricPipeline:
    @pytest.fixture(scope="class")
    def path3(self, small_trace):
        fabric = Fabric(
            make_config(small_trace), path_topology(3), fusion="mle"
        )
        fabric.ingest_stream(small_trace.packets, chunk_packets=7000)
        fabric.drain()
        return fabric

    def test_vantages_observe_only_routed_flows(self, path3, small_trace):
        topo = path3.topology
        pair = topo.pair_of(small_trace.flows.ids)
        for node, vantage in enumerate(path3.vantages):
            seen = set(vantage.flows_seen().tolist())
            routed = set(
                small_trace.flows.ids[
                    topo.observation_matrix[pair, node]
                ].tolist()
            )
            # Every observed flow was routed here (the cache can miss
            # none: caching is lossless over the observed substream).
            assert seen == routed

    def test_query_dedups_repeated_flows(self, path3, small_trace):
        ids = small_trace.flows.ids[:5]
        doubled = np.concatenate([ids, ids])
        est = path3.query(doubled)
        np.testing.assert_array_equal(est[:5], est[5:])

    def test_chunking_invariance(self, small_trace):
        cfg = make_config(small_trace)
        a = Fabric(cfg, path_topology(3))
        a.ingest(small_trace.packets)
        b = Fabric(cfg, path_topology(3))
        b.ingest_stream(small_trace.packets, chunk_packets=1234)
        np.testing.assert_array_equal(
            a.query(small_trace.flows.ids), b.query(small_trace.flows.ids)
        )
        assert a.drain().shard_digests == b.drain().shard_digests

    def test_drain_order_does_not_change_estimates(self, small_trace):
        cfg = make_config(small_trace)
        estimates = []
        digests = []
        for order in ([0, 1, 2], [2, 0, 1]):
            fabric = Fabric(cfg, path_topology(3))
            fabric.ingest(small_trace.packets)
            for node in order:
                fabric.vantages[node].finalize()
            fabric.drain()
            estimates.append(fabric.query(small_trace.flows.ids))
            digests.append(fabric.drain().shard_digests)
        np.testing.assert_array_equal(estimates[0], estimates[1])
        assert digests[0] == digests[1]

    def test_ingest_after_drain_rejected(self, path3, small_trace):
        with pytest.raises(QueryError):
            path3.ingest(small_trace.packets[:10])

    def test_memory_accounting_sums_vantages(self, path3):
        assert path3.memory_bits == sum(
            v.memory_bits for v in path3.vantages
        )

    def test_report_fuses_against_truth(self, path3, small_trace):
        report = path3.report(small_trace.flows.ids, small_trace.flows.sizes)
        assert report.fused_flows == small_trace.num_flows
        assert set(report.per_vantage_are) == {0, 1, 2}
        assert np.isfinite(report.fused_are)


class TestSampling:
    def test_sampling_thins_observations_deterministically(self, small_trace):
        cfg = make_config(small_trace)
        runs = []
        for _ in range(2):
            fabric = Fabric(cfg, path_topology(2), sample_rate=0.5)
            fabric.ingest_stream(small_trace.packets, chunk_packets=3000)
            runs.append(fabric.drain())
        assert runs[0].observed_packets == runs[1].observed_packets
        assert runs[0].shard_digests == runs[1].shard_digests
        total = small_trace.num_packets
        for observed in runs[0].observed_packets:
            assert observed < total  # actually thinned

    def test_sampling_is_chunking_invariant(self, small_trace):
        cfg = make_config(small_trace)
        a = Fabric(cfg, path_topology(2), sample_rate=0.7)
        a.ingest(small_trace.packets)
        b = Fabric(cfg, path_topology(2), sample_rate=0.7)
        b.ingest_stream(small_trace.packets, chunk_packets=999)
        assert a.drain().shard_digests == b.drain().shard_digests

    def test_sampled_estimates_are_unbiased_back(self, small_trace):
        """A rate-p vantage's fused estimates target x, not p*x."""
        cfg = make_config(small_trace)
        fabric = Fabric(cfg, path_topology(1), sample_rate=0.5)
        fabric.ingest(small_trace.packets)
        est = fabric.query(small_trace.flows.ids)
        top = np.argsort(small_trace.flows.sizes)[-20:]
        ratio = est[top] / small_trace.flows.sizes[top]
        assert 0.8 < float(np.median(ratio)) < 1.2

    def test_per_node_rates(self, small_trace):
        cfg = make_config(small_trace)
        fabric = Fabric(
            cfg, path_topology(2), sample_rate={0: 0.25}
        )
        fabric.ingest(small_trace.packets)
        result = fabric.drain()
        # Node 1 (rate 1.0) sees its full routed substream; node 0 is
        # thinned well below it.
        assert result.observed_packets[0] < result.observed_packets[1]

    def test_bad_rates_rejected(self, small_trace):
        cfg = make_config(small_trace)
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigError):
                Fabric(cfg, path_topology(2), sample_rate=rate)


# -- the acceptance benchmark ------------------------------------------------


class TestFusionAccuracy:
    def test_mle_fusion_beats_best_single_vantage(self):
        """On a 6-node PATH over the seeded Zipf trace, fusing the
        quasi-independent per-vantage estimates with the weighted MLE
        yields lower mean relative error than the *best* single
        vantage — the acceptance criterion."""
        trace = default_paper_trace(scale=0.01, seed=5)
        config = CaesarConfig.for_budgets(
            sram_kb=0.9155,
            cache_kb=0.9766,
            num_packets=trace.num_packets,
            num_flows=trace.num_flows,
            k=3,
            seed=5,
        )
        fabric = Fabric(config, path_topology(6), fusion="mle")
        fabric.ingest_stream(trace.packets)
        report = fabric.report(trace.flows.ids, trace.flows.sizes)
        assert report.fused_flows == trace.num_flows
        assert report.fused_are < report.best_vantage_are, report.summary()


# -- runtime-backed vantages -------------------------------------------------


class TestRuntimeFabric:
    def test_runtime_vantages_match_in_process_fabric(self, tiny_trace, tmp_path):
        """A 2-worker-per-vantage runtime fabric drains bit-identical
        to the in-process twin — even with a chaos-killed worker."""
        cfg = make_config(tiny_trace)
        topo = path_topology(2)
        live = Fabric(
            cfg,
            topo,
            vantage_workers=2,
            state_dir=tmp_path,
            runtime_options={"checkpoint_every": 2},
        )
        try:
            for i, start in enumerate(range(0, len(tiny_trace.packets), 2000)):
                if i == 1:
                    live.kill_worker(1, 0)
                live.ingest(tiny_trace.packets[start : start + 2000])
            result = live.drain()
        finally:
            live.shutdown()
        assert result.restarts >= 1

        twin = Fabric(cfg, topo, shards_per_vantage=2)
        twin.ingest_stream(tiny_trace.packets, chunk_packets=2000)
        twin_result = twin.drain()
        assert result.shard_digests == twin_result.shard_digests
        np.testing.assert_array_equal(
            live.query(tiny_trace.flows.ids),
            twin.query(tiny_trace.flows.ids),
        )

    def test_runtime_vantage_requires_state_dir(self, tiny_trace):
        with pytest.raises(ConfigError):
            Fabric(make_config(tiny_trace), path_topology(1), vantage_workers=1)

    def test_kill_worker_needs_runtime(self, tiny_trace):
        fabric = Fabric(make_config(tiny_trace), path_topology(1))
        with pytest.raises(ConfigError):
            fabric.kill_worker(0, 0)
