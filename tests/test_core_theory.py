"""Tests validating the closed forms of Sections 4-5 — both internal
consistency and agreement with Monte-Carlo simulation of the mechanism."""

import numpy as np
import pytest

from repro.core import theory
from repro.core.split import split_value
from repro.errors import ConfigError


class TestClosedForms:
    def test_expected_evictions(self):
        # Eq. 10: E(t) = 2x/y.
        assert theory.expected_evictions(54, 54) == pytest.approx(2.0)
        assert theory.expected_evictions(270, 54) == pytest.approx(10.0)

    def test_remainder_mean(self):
        # Eq. 8: ev_i2 ~ k(k-1)/2.
        assert theory.expected_remainder_per_eviction(3) == 3.0
        assert theory.expected_remainder_per_eviction(1) == 0.0

    def test_portion_moments(self):
        # Eqs. 12 and 14.
        assert theory.portion_mean(90, 3) == pytest.approx(30.0)
        assert theory.portion_variance(90, 3, 54) == pytest.approx(90 * 4 / (54 * 3))

    def test_noise_moments(self):
        # Eqs. 15 and 16 with n = Q*mu.
        n, k, y, L = 1_000_000, 3, 54, 12500
        assert theory.noise_mean(n, k, L) == pytest.approx(n / (L * k))
        assert theory.noise_variance(n, k, y, L) == pytest.approx(n * 4 / (y * k * L))

    def test_counter_moments_are_sums(self):
        # Eq. 18 = Eq. 12 + Eq. 15 (mean), Eq. 14 + Eq. 16 (variance).
        x, k, y, L, n = 100, 3, 54, 1000, 50_000
        assert theory.counter_mean(x, k, L, n) == pytest.approx(
            theory.portion_mean(x, k) + theory.noise_mean(n, k, L)
        )
        assert theory.counter_variance(x, k, y, L, n) == pytest.approx(
            theory.portion_variance(x, k, y) + theory.noise_variance(n, k, y, L)
        )

    def test_csm_variance_formula(self):
        # Eq. 22 = k^2 * Eq. 18 variance.
        x, k, y, L, n = 100, 3, 54, 1000, 50_000
        assert theory.csm_variance(x, k, y, L, n) == pytest.approx(
            k * k * theory.counter_variance(x, k, y, L, n)
        )

    def test_mlm_variance_below_csm(self):
        # The paper's Section 5.2 claim, checked across sizes.
        x = np.logspace(0, 5, 30)
        assert theory.mlm_beats_csm(x, 3, 54, 12500, 27_720_011).all()

    def test_mlm_variance_positive(self):
        v = theory.mlm_variance(np.array([1.0, 100.0, 1e5]), 3, 54, 1000, 10**6)
        assert (v > 0).all()

    def test_mlm_requires_k2(self):
        with pytest.raises(ConfigError):
            theory.mlm_variance(10.0, 1, 54, 100, 1000)

    def test_k1_portion_variance_zero(self):
        # With k = 1 there is no remainder scatter: D(Y) = 0.
        assert theory.portion_variance(100, 1, 54) == 0.0

    def test_csm_variance_mechanism(self):
        # Pure noise: n/L thinning + clustering over k.
        v = theory.csm_variance_mechanism(3, 1000, 60_000, 9e6)
        assert v == pytest.approx(60_000 / 1000 + 9e6 / 3000)
        with pytest.raises(ConfigError):
            theory.csm_variance_mechanism(3, 1000, 100, -1.0)

    def test_rcs_reference_variance(self):
        v = theory.rcs_csm_variance(100, 3, 3000, 100_000)
        assert v == pytest.approx(100 * 2 + 3 * 100_000 / 3000)
        with pytest.raises(ConfigError):
            theory.rcs_csm_variance(1, 3, 0, 10)

    def test_validation(self):
        with pytest.raises(ConfigError):
            theory.csm_variance(1.0, 0, 54, 100, 10)
        with pytest.raises(ConfigError):
            theory.csm_variance(1.0, 3, 0, 100, 10)
        with pytest.raises(ConfigError):
            theory.csm_variance(1.0, 3, 54, 0, 10)


class TestMonteCarloAgreement:
    """Simulate the split mechanism directly and compare with Eqs. 12/14."""

    def test_portion_mean_and_variance(self, rng):
        """Simulate the paper's own model — eviction values uniform on
        {1..y}, remainders scattered Binomial(q, 1/k) — and check the
        exact-mechanism variance (the paper's Eq. 14 is k times it;
        see theory.portion_variance docstring)."""
        k, y = 3, 54
        x = 1080
        trials = 4000
        ys = np.empty(trials)
        for t in range(trials):
            total = np.zeros(k, dtype=np.int64)
            remaining = x
            while remaining > 0:
                chunk = min(int(rng.integers(1, y + 1)), remaining)
                total += split_value(chunk, k, rng)
                remaining -= chunk
            ys[t] = total[0]
        assert ys.mean() == pytest.approx(theory.portion_mean(x, k), rel=0.01)
        exact = theory.portion_variance_exact(x, k, y)
        assert ys.var() == pytest.approx(exact, rel=0.25)
        # And the paper's published formula is k times the exact one.
        assert theory.portion_variance(x, k, y) == pytest.approx(k * exact)

    def test_eviction_count_formula(self, rng):
        # With eviction values uniform on {1..y}, E(t) ~ 2x/y (Eq. 10).
        y, x = 54, 5000
        trials = 400
        counts = []
        for _ in range(trials):
            remaining, t = x, 0
            while remaining > 0:
                e = int(rng.integers(1, y + 1))
                remaining -= e
                t += 1
            counts.append(t)
        assert np.mean(counts) == pytest.approx(theory.expected_evictions(x, y), rel=0.05)
