"""Unit tests for the memory/time cost model (the FPGA substitute)."""

import pytest

from repro.cachesim.base import CacheStats
from repro.errors import ConfigError
from repro.memmodel.costmodel import OperationCounts, caesar_counts, case_counts, rcs_counts
from repro.memmodel.pipeline import IngressModel
from repro.memmodel.technologies import TECHNOLOGIES, LatencyModel, MemoryTechnology


def stats_for(n: int, evictions: int) -> CacheStats:
    s = CacheStats(accesses=n, hits=n - evictions, misses=evictions)
    s.overflow_evictions = evictions
    return s


class TestTechnologies:
    def test_paper_latency_ordering(self):
        assert (
            TECHNOLOGIES["onchip"].access_ns
            < TECHNOLOGIES["sram_fast"].access_ns
            <= TECHNOLOGIES["sram"].access_ns
            < TECHNOLOGIES["dram"].access_ns
        )

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ConfigError):
            MemoryTechnology("bad", 0.0)

    def test_loss_rates_match_paper(self):
        """The paper's empirical 2/3 and 9/10 loss rates are exactly the
        3x and 10x cache/SRAM speed gaps."""
        lat = LatencyModel()
        assert lat.loss_rate_at_line_rate(10.0) == pytest.approx(9 / 10)
        assert lat.loss_rate_at_line_rate(3.0) == pytest.approx(2 / 3)
        assert lat.loss_rate_at_line_rate(0.5) == 0.0

    def test_latency_validation(self):
        with pytest.raises(ConfigError):
            LatencyModel(sram_access_ns=0)
        with pytest.raises(ConfigError):
            LatencyModel(add_ns=-1)


class TestOperationCounts:
    def test_validation(self):
        with pytest.raises(ConfigError):
            OperationCounts(packets=-1)
        with pytest.raises(ConfigError):
            OperationCounts(packets=1, front_hashes=-1)

    def test_pricing(self):
        lat = LatencyModel()
        counts = OperationCounts(
            packets=10, front_cache_accesses=10, back_sram_rmws=2, back_hashes=2
        )
        assert counts.front_ns(lat) == 10.0
        assert counts.back_ns(lat) == 2 * lat.sram_rmw_ns + 2 * lat.hash_ns
        assert counts.per_packet_ns(lat) == pytest.approx(
            (counts.front_ns(lat) + counts.back_ns(lat)) / 10
        )

    def test_scheme_counts(self):
        stats = stats_for(1000, 40)
        cz = caesar_counts(stats, k=3)
        assert cz.front_cache_accesses == 1000
        assert cz.back_sram_rmws == 40  # bank-parallel: one item per eviction
        ca = case_counts(stats)
        assert ca.front_power_ops == 1000
        assert ca.back_power_ops == 40
        rc = rcs_counts(1000)
        assert rc.back_sram_rmws == 1000
        assert rc.front_cache_accesses == 0
        with pytest.raises(ConfigError):
            rcs_counts(-1)


class TestIngressModel:
    def test_line_rate_floor(self):
        model = IngressModel(LatencyModel(), fifo_depth=1000)
        res = model.process(rcs_counts(100))
        # 100 packets cannot be accepted faster than line rate.
        assert res.ingress_ns >= 100.0

    def test_rcs_kink(self):
        """Below the FIFO depth RCS runs at line rate; far above it the
        SRAM bounds ingress (paper Fig. 8's drastic increase)."""
        model = IngressModel(LatencyModel(), fifo_depth=10_000)
        small = model.process(rcs_counts(5_000))
        assert small.ingress_ns == pytest.approx(5_000)
        big = model.process(rcs_counts(1_000_000))
        per_packet = big.ingress_ns / 1_000_000
        assert per_packet > 5.0  # SRAM-bound, not line-rate-bound

    def test_caesar_always_fastest(self):
        model = IngressModel(LatencyModel(), fifo_depth=10_000)
        for n in (100, 10_000, 1_000_000):
            stats = stats_for(n, int(n * 0.1))
            t_caesar = model.process(caesar_counts(stats, 3)).ingress_ns
            t_case = model.process(case_counts(stats)).ingress_ns
            t_rcs = model.process(rcs_counts(n)).ingress_ns
            assert t_caesar <= t_case
            assert t_caesar <= t_rcs

    def test_case_slowest_on_short_streams(self):
        """Paper Fig. 8: below the kink CASE is the most expensive."""
        model = IngressModel(LatencyModel(), fifo_depth=10_000)
        stats = stats_for(1_000, 10)
        t_case = model.process(case_counts(stats)).ingress_ns
        t_rcs = model.process(rcs_counts(1_000)).ingress_ns
        assert t_case > t_rcs

    def test_rcs_exceeds_case_beyond_kink(self):
        model = IngressModel(LatencyModel(), fifo_depth=10_000)
        n = 2_000_000
        stats = stats_for(n, int(n * 0.1))
        t_case = model.process(case_counts(stats)).ingress_ns
        t_rcs = model.process(rcs_counts(n)).ingress_ns
        assert t_rcs > t_case

    def test_rcs_loss_is_paper_rate(self):
        model = IngressModel(LatencyModel(), fifo_depth=10_000)
        res = model.process(rcs_counts(100_000))
        assert res.loss_rate == pytest.approx(0.9)
        fast = IngressModel(LatencyModel(sram_access_ns=3.0))
        assert fast.process(rcs_counts(100_000)).loss_rate == pytest.approx(2 / 3)

    def test_caesar_lossless(self):
        model = IngressModel(LatencyModel(), fifo_depth=10_000)
        stats = stats_for(100_000, 3_000)
        res = model.process(caesar_counts(stats, 3))
        assert res.loss_rate < 0.3  # amortized back-end below line rate

    def test_drain_at_least_ingress(self):
        model = IngressModel(LatencyModel(), fifo_depth=100)
        res = model.process(rcs_counts(10_000))
        assert res.drain_ns >= res.ingress_ns

    def test_throughput(self):
        model = IngressModel(LatencyModel(), fifo_depth=10_000)
        res = model.process(rcs_counts(1000))
        assert res.throughput_mpps == pytest.approx(1000.0)  # 1 pkt/ns = 1000 Mpps

    def test_fifo_validation(self):
        with pytest.raises(ConfigError):
            IngressModel(fifo_depth=-1)
