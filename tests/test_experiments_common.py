"""Tests for the shared experiment plumbing (experiments/common.py)."""

import numpy as np
import pytest

from repro.experiments.common import accuracy_table, build_caesar, build_case, build_rcs
from repro.experiments.trace_setup import ExperimentSetup
from repro.traffic.trace import default_paper_trace


@pytest.fixture(scope="module")
def setup() -> ExperimentSetup:
    return ExperimentSetup(
        trace=default_paper_trace(scale=0.004, seed=11), scale=0.004, seed=11
    )


class TestBuilders:
    def test_build_caesar_respects_budgets(self, setup):
        caesar = build_caesar(setup)
        assert caesar.config.sram_kilobytes <= setup.sram_kb_main
        assert caesar.config.cache_kilobytes <= setup.cache_kb
        assert caesar.counters.total_mass == setup.trace.num_packets

    def test_build_caesar_overrides(self, setup):
        caesar = build_caesar(setup, k=5, sram_kb=2 * setup.sram_kb_main)
        assert caesar.config.k == 5
        assert caesar.config.sram_kilobytes <= 2 * setup.sram_kb_main

    def test_build_caesar_remainder_policy(self, setup):
        caesar = build_caesar(setup, remainder="even")
        assert caesar.config.remainder == "even"
        assert caesar.counters.total_mass == setup.trace.num_packets

    def test_build_rcs_default_lossless(self, setup):
        rcs = build_rcs(setup)
        assert rcs.num_packets == setup.trace.num_packets
        assert rcs.counters.total_mass == setup.trace.num_packets

    def test_build_rcs_custom_packets(self, setup):
        rcs = build_rcs(setup, packets=setup.trace.packets[:1000])
        assert rcs.num_packets == 1000

    def test_build_case(self, setup):
        case = build_case(setup, sram_kb=setup.sram_kb_case)
        assert case.num_packets == setup.trace.num_packets
        est = case.estimate(setup.trace.flows.ids)
        assert (est >= 0).all()


class TestAccuracyTable:
    def test_structure(self, setup):
        truth = setup.trace.flows.sizes
        table, qualities = accuracy_table(
            "demo",
            truth,
            {"perfect": truth.astype(float), "off": truth * 2.0},
        )
        assert "demo" in table
        assert "perfect ARE" in table and "off ARE" in table
        assert qualities["perfect"].per_flow_are == pytest.approx(0.0)
        assert qualities["off"].per_flow_are == pytest.approx(1.0)

    def test_bias_columns_signed(self, setup):
        truth = setup.trace.flows.sizes
        _, qualities = accuracy_table(
            "demo", truth, {"under": truth * 0.5}
        )
        assert qualities["under"].mean_signed_rel_error == pytest.approx(-0.5)
