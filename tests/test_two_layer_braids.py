"""Tests for the two-layer Counter Braids variant."""

import numpy as np
import pytest

from repro.baselines.counter_braids import (
    TwoLayerBraidsConfig,
    TwoLayerCounterBraids,
    message_passing_decode,
)
from repro.errors import ConfigError, QueryError


class TestMessagePassingDecode:
    def test_exact_on_collision_free_graph(self):
        # 3 flows, disjoint counters: decode is exact immediately.
        values = np.array([5.0, 5.0, 9.0, 9.0, 2.0, 2.0])
        idx = np.array([[0, 1], [2, 3], [4, 5]])
        est = message_passing_decode(values, idx)
        np.testing.assert_allclose(est, [5, 9, 2])

    def test_resolves_single_collision(self):
        # Flows A (size 5) and B (size 9) share counter 1.
        values = np.array([5.0, 14.0, 9.0])
        idx = np.array([[0, 1], [1, 2]])
        est = message_passing_decode(values, idx)
        np.testing.assert_allclose(est, [5, 9])

    def test_empty(self):
        assert message_passing_decode(np.zeros(4), np.zeros((0, 2), dtype=np.int64)).shape == (0,)


class TestTwoLayerConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TwoLayerBraidsConfig(d1=1)
        with pytest.raises(ConfigError):
            TwoLayerBraidsConfig(layer1_bits=0)
        with pytest.raises(ConfigError):
            TwoLayerBraidsConfig(layer2_bank=0)

    def test_memory_accounting(self):
        cfg = TwoLayerBraidsConfig(
            d1=3, layer1_bank=1000, layer1_bits=8, d2=3, layer2_bank=100
        )
        # 8 value bits + 1 overflow status bit per layer-1 counter.
        assert cfg.memory_kilobytes == pytest.approx((3000 * 9 + 300 * 32) / 8192)


class TestTwoLayerBraids:
    def test_no_overflow_matches_truth_sparse(self):
        rng = np.random.default_rng(7)
        ids = rng.integers(0, 2**63, size=30, dtype=np.uint64)
        sizes = rng.integers(1, 100, size=30)  # below the 8-bit wrap
        packets = np.repeat(ids, sizes)
        braids = TwoLayerCounterBraids(TwoLayerBraidsConfig(layer1_bank=300))
        braids.process(packets)
        est = braids.decode(ids)
        np.testing.assert_allclose(est, sizes, atol=0.5)

    def test_carries_recovered_for_elephants(self):
        """Flows above the 8-bit layer-1 range need layer-2 carries."""
        rng = np.random.default_rng(8)
        ids = rng.integers(0, 2**63, size=20, dtype=np.uint64)
        sizes = rng.integers(300, 3000, size=20)  # all wrap layer 1
        packets = np.repeat(ids, sizes)
        braids = TwoLayerCounterBraids(
            TwoLayerBraidsConfig(layer1_bank=300, layer2_bank=128)
        )
        braids.process(packets)
        est = braids.decode(ids)
        rel = np.abs(est - sizes) / sizes
        assert rel.mean() < 0.05

    def test_incremental_batches_accumulate(self):
        ids = np.array([5], dtype=np.uint64)
        braids = TwoLayerCounterBraids(TwoLayerBraidsConfig(layer1_bank=64))
        for _ in range(4):
            braids.process(np.full(200, 5, dtype=np.uint64))
        est = braids.decode(ids)
        assert est[0] == pytest.approx(800, rel=0.05)

    def test_estimate_requires_data(self):
        braids = TwoLayerCounterBraids(TwoLayerBraidsConfig())
        with pytest.raises(QueryError):
            braids.estimate(np.array([1], dtype=np.uint64))

    def test_empty_query(self):
        braids = TwoLayerCounterBraids(TwoLayerBraidsConfig())
        braids.process(np.array([1, 1], dtype=np.uint64))
        assert braids.decode(np.array([], dtype=np.uint64)).shape == (0,)
