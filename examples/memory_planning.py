"""Memory planning: how much SRAM does a target accuracy need?

A deployment question the paper's analysis answers in closed form:
Eq. (22) gives CSM's variance as a function of the memory geometry.
This example sweeps SRAM budgets, compares the *predicted* error
(theory) with the *measured* error (simulation), and prints the
smallest budget meeting a target relative error on mid-size flows.

Run:  python examples/memory_planning.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.metrics import top_flow_are
from repro.analysis.tables import format_table
from repro.core import theory
from repro.sram.layout import bank_size_for_budget


def main() -> None:
    scale = 0.02
    trace = repro.default_paper_trace(scale=scale, seed=4)
    truth = trace.flows.sizes
    target_rel_error = 0.25
    probe_size = int(np.percentile(truth, 99.8))  # a mid-size elephant
    print(f"trace: n={trace.num_packets}, Q={trace.num_flows}; "
          f"target: <= {target_rel_error:.0%} on flows of ~{probe_size} packets\n")

    rows = []
    chosen = None
    for budget_kb in (0.5, 1.0, 2.0, 4.0, 8.0, 16.0):
        cfg = repro.CaesarConfig.for_budgets(
            sram_kb=budget_kb,
            cache_kb=97.66 * scale,
            num_packets=trace.num_packets,
            num_flows=trace.num_flows,
        )
        # Predicted relative error at the probe size (1 sigma of Eq. 22).
        predicted = float(
            np.sqrt(
                theory.csm_variance(
                    probe_size,
                    cfg.k,
                    cfg.entry_capacity,
                    cfg.bank_size,
                    trace.num_packets,
                )
            )
            / probe_size
        )
        caesar = repro.Caesar(cfg)
        caesar.process(trace.packets)
        caesar.finalize()
        est = caesar.estimate(trace.flows.ids)
        near_probe = (truth > probe_size * 0.5) & (truth < probe_size * 2)
        measured = float(
            np.mean(np.abs(est[near_probe] - truth[near_probe]) / truth[near_probe])
        )
        rows.append([f"{budget_kb:.1f}KB", cfg.bank_size, predicted, measured,
                     top_flow_are(est, truth, 20)])
        if chosen is None and measured <= target_rel_error:
            chosen = budget_kb

    print(format_table(
        ["SRAM budget", "bank L", "predicted rel err (Eq.22)",
         "measured rel err", "top-20 ARE"],
        rows,
        title="error vs memory (CSM)",
    ))
    if chosen is None:
        print("\nno swept budget meets the target; increase the sweep range")
    else:
        print(f"\nsmallest swept budget meeting the target: {chosen} KB")
    print("note: Eq. (22) models only split noise; heavy-tail counter "
          "clustering (DESIGN.md) makes measured error larger at tight "
          "budgets — plan from the measured column.")


if __name__ == "__main__":
    main()
