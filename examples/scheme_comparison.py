"""Scheme comparison: the paper's evaluation in miniature.

Runs CAESAR, lossless RCS, line-rate (lossy) RCS, and CASE on one
trace at matched SRAM budgets, then prints accuracy and modeled
processing time side by side — Figures 4-8 in one table.

Run:  python examples/scheme_comparison.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.metrics import evaluate, top_flow_are
from repro.analysis.tables import format_table
from repro.memmodel.costmodel import caesar_counts, case_counts, rcs_counts
from repro.memmodel.pipeline import IngressModel
from repro.traffic.packets import apply_loss


def main() -> None:
    scale = 0.02
    trace = repro.default_paper_trace(scale=scale, seed=2)
    truth = trace.flows.sizes
    ids = trace.flows.ids
    sram_kb = 91.55 * scale
    cache_kb = 97.66 * scale
    model = IngressModel()
    rows = []

    # CAESAR (paper configuration).
    caesar = repro.Caesar(
        repro.CaesarConfig.for_budgets(
            sram_kb=sram_kb, cache_kb=cache_kb,
            num_packets=trace.num_packets, num_flows=trace.num_flows,
        )
    )
    caesar.process(trace.packets)
    caesar.finalize()
    q = evaluate(caesar.estimate(ids), truth)
    t = model.process(caesar_counts(caesar.cache.stats, 3))
    rows.append(
        ["CAESAR-CSM", q.packet_weighted_are, top_flow_are(caesar.estimate(ids), truth, 30),
         t.ingress_ns / 1e3, t.loss_rate]
    )

    # RCS, lossless (Fig. 6) and at the 10x line-rate gap (Fig. 7).
    for label, loss in (("RCS lossless", 0.0), ("RCS @ line rate", 0.9)):
        rcs = repro.RCS(repro.RCSConfig.for_budget(sram_kb))
        packets = apply_loss(trace.packets, loss, seed=5) if loss else trace.packets
        rcs.process(packets)
        est = rcs.estimate(ids)
        q = evaluate(est, truth)
        t = model.process(rcs_counts(trace.num_packets))
        rows.append([label, q.packet_weighted_are, top_flow_are(est, truth, 30),
                     t.ingress_ns / 1e3, t.loss_rate if loss else 0.0])

    # CASE at 2x the budget (Fig. 5's generous setting) — still collapses.
    case = repro.Case(
        repro.CaseConfig.for_budgets(
            sram_kb=2 * sram_kb, cache_kb=cache_kb,
            num_packets=trace.num_packets, num_flows=trace.num_flows,
            max_value=float(truth.max()),
        )
    )
    case.process(trace.packets)
    case.finalize()
    est = case.estimate(ids)
    q = evaluate(est, truth)
    t = model.process(case_counts(case.cache.stats))
    rows.append(["CASE (2x SRAM)", q.packet_weighted_are, top_flow_are(est, truth, 30),
                 t.ingress_ns / 1e3, 0.0])

    print(format_table(
        ["scheme", "ARE (pkt-weighted)", "ARE (top-30 flows)", "time (us, model)", "loss"],
        rows,
        title=f"n={trace.num_packets}, Q={trace.num_flows}, SRAM~{sram_kb:.2f}KB",
    ))
    print("\nExpected shape (paper): CAESAR ~ RCS-lossless accuracy; "
          "RCS@line-rate error ~ its 90% loss; CASE collapses; "
          "CAESAR fastest.")
    print("Loss column is the steady-state memory-path model: RCS pays "
          "one off-chip update per packet (0.9 at the 10x gap). CAESAR's "
          "nonzero value reflects the shuffled synthetic arrival, which "
          "maximizes replacement evictions; real traces have temporal "
          "locality, which drives its eviction rate — and loss — toward "
          "zero (try bursty_stream).")


if __name__ == "__main__":
    main()
