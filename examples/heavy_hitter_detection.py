"""Heavy-hitter detection: find the elephants behind a traffic spike.

The paper's intro motivates per-flow measurement with intrusion
detection and scanning-host identification. This example simulates a
link where a handful of flows (a DDoS-ish burst) dwarf normal traffic,
measures with CAESAR at a small SRAM budget, and checks how well
querying the sketch recovers the true top-K talkers.

Run:  python examples/heavy_hitter_detection.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.traffic.distributions import calibrate_zipf_to_mean
from repro.traffic.flows import FlowSet
from repro.traffic.packets import uniform_stream
from repro.traffic.trace import Trace


def build_attack_trace(seed: int = 11) -> tuple[Trace, np.ndarray]:
    """Background traffic + 12 injected heavy hitters; returns the
    trace and the attackers' flow IDs."""
    rng = np.random.default_rng(seed)
    background = FlowSet.generate(20_000, calibrate_zipf_to_mean(25.0, 4000), seed=seed)
    # Attackers: 12 flows at 20-60x the largest background flow.
    attack_sizes = rng.integers(
        20 * background.sizes.max(), 60 * background.sizes.max(), size=12
    ).astype(np.int64)
    attack_ids = np.arange(1, 13, dtype=np.uint64)  # IDs outside the generator range
    flows = FlowSet(
        ids=np.concatenate([background.ids, attack_ids]),
        sizes=np.concatenate([background.sizes, attack_sizes]),
    )
    return Trace(packets=uniform_stream(flows, seed=seed + 1), flows=flows), attack_ids


def main() -> None:
    trace, attack_ids = build_attack_trace()
    print(f"trace: {trace.num_packets} packets, {trace.num_flows} flows "
          f"({len(attack_ids)} injected heavy hitters)")

    # k = 5 banks instead of the paper's 3: the median decoder below
    # then tolerates up to two counters polluted by attacker collisions,
    # which matters when a few flows are 10^5 x the background.
    config = repro.CaesarConfig.for_budgets(
        sram_kb=16.0,
        cache_kb=4.0,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=5,
    )
    caesar = repro.Caesar(config)
    caesar.process(trace.packets)
    caesar.finalize()

    # Query *all* candidate flows and rank by estimate. (A deployment
    # would query the flow IDs logged by the collector.) The robust
    # counter-median decoder (library extension) is used instead of
    # plain CSM: ranking by CSM can be polluted by mice that collide
    # with an attacker on one shared counter, while the median ignores
    # a single hot counter out of k.
    estimates = caesar.estimate(trace.flows.ids, method="median", clip_negative=True)
    k = len(attack_ids)
    top_idx = np.argsort(estimates)[::-1][:k]
    detected = set(trace.flows.ids[top_idx].tolist())
    true_set = set(attack_ids.tolist())
    recall = len(detected & true_set) / len(true_set)

    print(f"\ntop-{k} by estimated size vs injected attackers: recall {recall:.0%}")
    print("\nrank  flow id              estimate     actual")
    truth_lookup = dict(zip(trace.flows.ids.tolist(), trace.flows.sizes.tolist()))
    for rank, i in enumerate(top_idx, 1):
        fid = int(trace.flows.ids[i])
        mark = "  <- attacker" if fid in true_set else ""
        print(f"{rank:>4}  {fid:<20d} {estimates[i]:>10.0f} {truth_lookup[fid]:>10d}{mark}")

    # Detection is robust because elephants dominate sharing noise —
    # the same reason Figure 4's scatter hugs y = x for large flows.
    assert recall >= 0.9, "heavy hitters should be recovered"


if __name__ == "__main__":
    main()
