"""Volume accounting: per-customer byte counts from a capture file.

An ISP bills customers by transferred bytes. This example writes a
synthetic pcap capture (the wire format real tooling produces), feeds
it through the full pipeline — pcap parse → 5-tuple → SHA-1/APHash
flow IDs + IPv4 lengths → volume-mode CAESAR sized by the *planner*
from an accuracy target — and produces the per-customer byte report
with clustering-aware confidence intervals.

Run:  python examples/volume_accounting.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.traffic.lengths import imix_lengths
from repro.traffic.pcap import pcap_to_streams, write_pcap
from repro.types import FiveTuple


def build_capture(path: Path, seed: int = 23) -> dict[int, int]:
    """Synthesize a capture of 40 customers; returns true bytes per
    customer source IP."""
    rng = np.random.default_rng(seed)
    customers = [0x0A000000 + i for i in range(1, 41)]
    # Packets per customer: heavy-tailed usage.
    packet_counts = np.maximum(1, (2000 / np.arange(1, 41) ** 1.2)).astype(int)
    headers: list[FiveTuple] = []
    for ip, count in zip(customers, packet_counts):
        for _ in range(count):
            headers.append(
                FiveTuple(ip, 0x08080808, int(rng.integers(1024, 65536)), 443, 6)
            )
    order = rng.permutation(len(headers))
    headers = [headers[i] for i in order]
    lengths = imix_lengths(len(headers), seed=seed + 1)
    write_pcap(path, headers, lengths)
    # Ground truth bytes by source IP.
    truth: dict[int, int] = {}
    for h, ln in zip(headers, lengths):
        truth[h.src_ip] = truth.get(h.src_ip, 0) + int(ln)
    return truth


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        pcap_path = Path(tmp) / "billing.pcap"
        truth_by_ip = build_capture(pcap_path)
        print(f"capture: {pcap_path.stat().st_size} bytes on disk")

        ids, lengths = pcap_to_streams(pcap_path)
        print(f"parsed {len(ids)} packets, {len(np.unique(ids))} flows, "
              f"{int(lengths.sum())} bytes total")

        # One call: volume measurement sized from the byte budgets.
        result = repro.measure(
            ids, sram_kb=32.0, cache_kb=8.0, lengths=lengths
        )

        # Aggregate flows by customer: query each flow, sum per source IP.
        # (Flow IDs are opaque; billing keeps its own flow → customer map,
        # which here we rebuild from the capture.)
        from repro.hashing.flowid import flow_id_from_five_tuple
        from repro.traffic.pcap import read_pcap

        per_customer_flows: dict[int, list[int]] = {}
        for pkt in read_pcap(pcap_path).packets:
            fid = flow_id_from_five_tuple(pkt.header)
            per_customer_flows.setdefault(pkt.header.src_ip, [])
            if fid not in per_customer_flows[pkt.header.src_ip]:
                per_customer_flows[pkt.header.src_ip].append(fid)

    print("\ncustomer          measured bytes      actual bytes    error")
    errors = []
    for ip in sorted(truth_by_ip, key=truth_by_ip.get, reverse=True)[:10]:
        flow_ids = np.array(per_customer_flows[ip], dtype=np.uint64)
        # Billing sums many flows: use the *unclipped* estimates so the
        # per-flow noise cancels (clipping at zero would accumulate a
        # positive bias across hundreds of mice).
        measured = float(
            result.caesar.estimate(flow_ids, clip_negative=False).sum()
        )
        actual = truth_by_ip[ip]
        rel = (measured - actual) / actual
        errors.append(abs(rel))
        print(f"10.0.0.{ip & 0xFF:<3d}   {measured:>15.0f}   {actual:>15d}   {rel:+7.2%}")
    print(f"\nmean |error| over the top 10 customers: {np.mean(errors):.2%}")


if __name__ == "__main__":
    main()
