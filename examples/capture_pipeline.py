"""Full capture pipeline: raw headers on disk -> flow IDs -> CAESAR.

Exercises the part of the paper's Section 6.1 that precedes the
sketch: packets are captured as 5-tuple headers, digested with SHA-1
and APHash into 64-bit flow IDs, and only then measured. This example
writes a synthetic capture file in the repo's binary header format,
reads it back, and runs the measurement end to end — the path a user
with real captured headers would take.

Run:  python examples/capture_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.traffic import headers as hdrs
from repro.traffic.distributions import calibrate_zipf_to_mean


def main() -> None:
    rng = np.random.default_rng(8)

    # 1. Synthesize a capture: 800 flows with heavy-tailed sizes,
    #    realistic 5-tuples (TCP/UDP/ICMP mix), shuffled arrival.
    dist = calibrate_zipf_to_mean(20.0, 2000)
    sizes = dist.sample(800, rng)
    capture = hdrs.synthetic_capture(800, sizes, seed=8)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "capture.chd"
        hdrs.write_headers(path, capture)
        print(f"wrote {len(capture)} captured headers "
              f"({path.stat().st_size} bytes) to {path.name}")

        # 2. Read the capture back and derive flow IDs the paper's way
        #    (SHA-1 + APHash over the packed 5-tuple).
        headers = hdrs.read_headers(path)
        trace = hdrs.trace_from_headers(headers)
        print(f"derived {trace.num_flows} distinct flow IDs from "
              f"{trace.num_packets} packets")

    # 3. Measure.
    config = repro.CaesarConfig.for_budgets(
        sram_kb=4.0, cache_kb=1.0,
        num_packets=trace.num_packets, num_flows=trace.num_flows,
    )
    caesar = repro.Caesar(config)
    caesar.process(trace.packets)
    caesar.finalize()

    # 4. Query a few specific 5-tuples, like an operator would.
    #    (capture[] is per-packet, so dedupe to distinct headers.)
    distinct = list(dict.fromkeys(capture))[:3]
    print("\nquerying three specific 5-tuples:")
    for header in distinct:
        fid = hdrs.flow_id_from_five_tuple(header)
        est = caesar.estimate(np.array([fid], dtype=np.uint64), clip_negative=True)[0]
        actual = trace.flows.size_of(fid)
        print(f"  {header.src_ip:>10x} -> {header.dst_ip:<10x} "
              f"proto {header.protocol:>2}: estimated {est:8.1f}, actual {actual}")

    quality = repro.evaluate(caesar.estimate(trace.flows.ids), trace.flows.sizes)
    print(f"\noverall: {quality.summary()}")


if __name__ == "__main__":
    main()
