"""Quickstart: measure per-flow sizes with CAESAR.

Builds a synthetic backbone-like trace, sizes a CAESAR instance from
memory budgets exactly like the paper's Section 6.2, runs the online
construction phase, and queries flow-size estimates offline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    # 1. A workload: ~2 % of the paper's trace, same shape
    #    (heavy-tailed, mean flow size ~27 packets).
    trace = repro.default_paper_trace(scale=0.02, seed=1)
    print(f"trace: {trace.num_packets} packets, {trace.num_flows} flows, "
          f"mean size {trace.mean_flow_size:.1f}")

    # 2. Size CAESAR from memory budgets (scaled from the paper's
    #    91.55 KB SRAM / 97.66 KB cache).
    config = repro.CaesarConfig.for_budgets(
        sram_kb=91.55 * 0.02,
        cache_kb=97.66 * 0.02,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
    )
    print(f"config: {config.describe()}")

    # 3. Online construction phase: feed the packet stream.
    caesar = repro.Caesar(config)
    caesar.process(trace.packets)
    caesar.finalize()  # dump cache residue to SRAM — required before queries
    stats = caesar.cache.stats
    print(f"cache: hit rate {stats.hit_rate:.3f}, "
          f"{stats.overflow_evictions} overflow / "
          f"{stats.replacement_evictions} replacement evictions")

    # 4. Offline query phase: estimate every flow (CSM, the paper's
    #    default), evaluate against ground truth.
    estimates = caesar.estimate(trace.flows.ids)  # method="csm"
    quality = repro.evaluate(estimates, trace.flows.sizes)
    print(f"accuracy: {quality.summary()}")

    # 5. Confidence intervals (paper Eq. 26) for the ten biggest flows.
    top = trace.flows.top(10)
    est_top = caesar.estimate(top.ids)
    lo, hi = caesar.confidence_interval(top.ids, "csm", alpha=0.95)
    print("\ntop flows (actual, estimate, 95% CI):")
    for i in range(10):
        print(f"  {top.sizes[i]:>7d}  {est_top[i]:>10.1f}  "
              f"[{lo[i]:>10.1f}, {hi[i]:>10.1f}]")

    covered = np.mean((top.sizes >= lo) & (top.sizes <= hi))
    print(f"CI coverage on top flows: {covered:.0%}")
    print("(Eq. 26 models only the split noise; whole-flow counter "
          "collisions on a heavy-tailed trace add variance it omits, so "
          "elephant CIs under-cover at tight budgets — see EXPERIMENTS.md.)")


if __name__ == "__main__":
    main()
