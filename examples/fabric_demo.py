"""Multi-vantage fabric demo: a tree of observers, fused at query time.

An ISP-style deployment: nine access leaves feed a three-level
aggregation TREE (depth 2, branching 3 — 13 vantage points). Every
flow hashes to a (source leaf, destination leaf) pair and is observed
by each CAESAR box on the leaf → LCA → leaf route; the core boxes see
most traffic, the leaves only their own. At query time the fabric
fuses each flow's per-vantage estimates (min / inverse-variance /
weighted MLE) and the demo prints every vantage's own relative error
next to the fused one, including a like-for-like comparison on the
best single box's own flow set, where fusing quasi-independent
observers pays off.

Run:  python examples/fabric_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CaesarConfig
from repro.fabric import Fabric, tree_topology
from repro.traffic.trace import default_paper_trace


def main() -> None:
    trace = default_paper_trace(scale=0.01, seed=11)
    print(
        f"workload: {trace.num_packets} packets over {trace.num_flows} "
        f"Zipf flows"
    )

    topology = tree_topology(2, 3)
    print(f"topology: {topology.describe()}")
    config = CaesarConfig.for_budgets(
        sram_kb=1.0,
        cache_kb=1.0,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=3,
        seed=11,
    )

    fabric = Fabric(config, topology, fusion="mle")
    fabric.ingest_stream(trace.packets)
    result = fabric.drain()
    print(
        f"routed {result.num_packets} packets into "
        f"{result.total_observations} observations "
        f"({result.total_observations / result.num_packets:.2f} per packet)\n"
    )

    # Per-vantage vs fused accuracy, each vantage scored only on the
    # flows its routes actually carry.
    report = fabric.report(trace.flows.ids, trace.flows.sizes)
    print("per-vantage relative error (observed flows only):")
    for v in sorted(report.per_vantage_are):
        role = "leaf" if v in set(topology.entry_nodes.tolist()) else (
            "root" if v == 0 else "aggregation"
        )
        print(
            f"  vantage {v:>2} ({role:<11}) "
            f"ARE {report.per_vantage_are[v]:8.3f} over "
            f"{report.per_vantage_flows[v]:>5} flows  "
            f"[{result.observed_packets[v]} packets]"
        )
    print(f"\nbest single vantage: {report.best_vantage} "
          f"(ARE {report.best_vantage_are:.3f})")
    for method in ("min", "ivw", "mle"):
        r = fabric.report(trace.flows.ids, trace.flows.sizes, fusion=method)
        print(f"fused ({method:>3}): ARE {r.fused_are:.3f} "
              f"over {r.fused_flows} flows")

    # Like-for-like: the best vantage only observes a fraction of the
    # flows, so score the fused vector on *that vantage's* flow set.
    mle = fabric.report(trace.flows.ids, trace.flows.sizes, fusion="mle")
    fused_all, observations = fabric.query_detail(trace.flows.ids)
    best_obs = next(o for o in observations if o.vantage == mle.best_vantage)
    seen = best_obs.observed
    truth = trace.flows.sizes[seen]
    best_are = float(np.abs((best_obs.estimates[seen] - truth) / truth).mean())
    fused_are = float(np.abs((fused_all[seen] - truth) / truth).mean())
    verdict = "beats" if fused_are < best_are else "trails"
    print(
        f"\non vantage {mle.best_vantage}'s own {int(seen.sum())} flows, "
        f"weighted-MLE fusion {verdict} it: "
        f"ARE {fused_are:.3f} vs {best_are:.3f}"
    )

    # A peek at individual flows: the biggest flow as each layer saw it.
    big = int(np.argmax(trace.flows.sizes))
    flow = trace.flows.ids[big : big + 1]
    fused, observations = fabric.query_detail(flow)
    print(f"\nlargest flow ({int(trace.flows.sizes[big])} packets) as seen by:")
    for obs in observations:
        if np.isfinite(obs.estimates[0]):
            print(f"  vantage {obs.vantage:>2}: {obs.estimates[0]:10.1f}")
    print(f"  fused (mle): {fused[0]:10.1f}")


if __name__ == "__main__":
    main()
