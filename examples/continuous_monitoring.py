"""Continuous monitoring: epochs, live queries, and sharding.

A router monitors traffic in one-minute epochs: per-flow estimates for
each closed epoch, live ("is this flow spiking right now?") queries on
the open epoch, and — on a multi-queue line card — the same pipeline
sharded over 4 RSS queues. Exercises the library's extensions beyond
the paper's single offline measurement period.

Run:  python examples/continuous_monitoring.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.epochs import EpochalCaesar
from repro.core.sharded import ShardedCaesar
from repro.traffic.distributions import calibrate_zipf_to_mean
from repro.traffic.flows import FlowSet
from repro.traffic.packets import uniform_stream


def build_epoch_streams(seed: int = 17):
    """Three 'minutes' of traffic; one flow ramps up across epochs."""
    rng = np.random.default_rng(seed)
    dist = calibrate_zipf_to_mean(25.0, 3000)
    ramping = np.uint64(42)  # the flow we will watch
    streams = []
    ramp_sizes = (200, 2_000, 12_000)
    for i, ramp in enumerate(ramp_sizes):
        flows = FlowSet.generate(8_000, dist, seed=seed + i)
        packets = np.concatenate(
            [uniform_stream(flows, seed=seed + 10 + i), np.full(ramp, ramping)]
        )
        rng.shuffle(packets)
        streams.append(packets)
    return streams, ramping, ramp_sizes


def main() -> None:
    streams, ramping, ramp_sizes = build_epoch_streams()
    n = sum(len(s) for s in streams)
    config = repro.CaesarConfig(
        cache_entries=2048, entry_capacity=50, k=3, bank_size=4096, seed=3
    )

    # --- Epoch loop with a live mid-epoch check -------------------------
    monitor = EpochalCaesar(config)
    print("epoch | packets | hit rate | evictions | ramping-flow estimate")
    for i, stream in enumerate(streams):
        half = len(stream) // 2
        monitor.process(stream[:half])
        live = monitor.estimate_current(np.array([ramping]))[0]
        monitor.process(stream[half:])
        record = monitor.close_epoch()
        est = monitor.estimate(i, np.array([ramping]), clip_negative=True)[0]
        print(
            f"{record.index:>5} | {record.num_packets:>7} | {record.hit_rate:>8.3f} | "
            f"{record.evictions:>9} | {est:>10.0f}  (actual {ramp_sizes[i]}, "
            f"mid-epoch live reading {live:.0f})"
        )

    series = monitor.flow_series(int(ramping))
    growth = series[-1] / max(series[0], 1.0)
    print(f"\nramping flow series across epochs: {np.round(series).astype(int)} "
          f"(~{growth:.0f}x growth detected)")

    # --- Same workload through a 4-way sharded line card -----------------
    all_packets = np.concatenate(streams)
    sharded = ShardedCaesar(
        repro.CaesarConfig(
            cache_entries=2048, entry_capacity=50, k=3, bank_size=4096, seed=3
        ),
        num_shards=4,
    )
    sharded.process(all_packets)
    sharded.finalize()
    est = sharded.estimate(np.array([ramping]), clip_negative=True)[0]
    actual = sum(ramp_sizes)
    print(f"\n4-way sharded total for the ramping flow: {est:.0f} "
          f"(actual {actual}, {sharded.num_packets} packets across shards)")


if __name__ == "__main__":
    main()
