"""Shared benchmark fixtures.

Every figure benchmark runs on the same scaled paper workload (see
``repro.experiments.trace_setup``; override with ``REPRO_SCALE``). The
benchmark *output text* is the reproduction artifact: each bench prints
the regenerated table(s) alongside its timing.
"""

from __future__ import annotations

import pytest

from repro.experiments.trace_setup import ExperimentSetup, standard_setup


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    s = standard_setup()
    print(f"\n[workload] {s.describe()}")
    return s


def run_and_print(benchmark, capsys, runner, setup) -> None:
    """Benchmark one experiment runner and print its reproduced tables."""
    result = benchmark.pedantic(runner, args=(setup,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.render())
