"""Benchmark + reproduction harness for the paper's fig8 experiment.

Regenerates the fig8 rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_fig8_timing.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import fig8_timing as experiment


def bench_fig8_timing(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
