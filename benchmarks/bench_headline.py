"""Benchmark + reproduction harness for the paper's headline experiment.

Regenerates the headline rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_headline.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import headline as experiment


def bench_headline(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
