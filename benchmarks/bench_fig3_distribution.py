"""Benchmark + reproduction harness for the paper's fig3 experiment.

Regenerates the fig3 rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_fig3_distribution.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import fig3_distribution as experiment


def bench_fig3_distribution(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
