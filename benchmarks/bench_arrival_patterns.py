"""Benchmark + reproduction harness for the 'arrivals' experiment
(beyond-the-paper validation; see repro/experiments/arrival_patterns.py).

Run with:

    pytest benchmarks/bench_arrival_patterns.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import arrival_patterns as experiment


def bench_arrival_patterns(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
