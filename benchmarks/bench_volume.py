"""Benchmark + reproduction harness for the 'volume' experiment
(beyond-the-paper validation; see repro/experiments/volume.py).

Run with:

    pytest benchmarks/bench_volume.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import volume as experiment


def bench_volume(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
