"""Micro-benchmarks of the hot operations.

These are the operations the paper's FPGA prices in hardware; here they
gauge the *simulator's* throughput (packets/second of pure-Python or
vectorized paths), which bounds how large a REPRO_SCALE is practical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rcs import RCS, RCSConfig
from repro.cachesim.cache import FlowCache
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.csm import csm_estimate
from repro.core.mlm import mlm_estimate
from repro.core.split import split_batch, split_values_batch
from repro.hashing.family import BankedIndexer
from repro.hashing.mix import splitmix64_array


@pytest.fixture(scope="module")
def packet_batch(setup):
    return setup.trace.packets[:200_000]


@pytest.fixture(scope="module")
def runtime_packet_batch(setup):
    # The runtime benches need a longer stream than the other micros:
    # worker scaling is a per-packet locality effect competing against
    # fixed per-worker costs (fork, WAL, checkpoint file), so a short
    # batch prices the overhead and a long one prices the steady state.
    return setup.trace.packets[:1_000_000]


def bench_hash_throughput(benchmark):
    ids = np.random.default_rng(0).integers(0, 2**64, size=1_000_000, dtype=np.uint64)
    benchmark(splitmix64_array, ids)


def bench_banked_indexing(benchmark):
    idx = BankedIndexer(3, 12_500, seed=1)
    ids = np.random.default_rng(0).integers(0, 2**64, size=200_000, dtype=np.uint64)
    benchmark(idx.indices, ids)


def bench_cache_per_packet_loop(benchmark, packet_batch):
    def run():
        cache = FlowCache(8192, 54, policy="lru")
        cache.process(packet_batch, lambda fid, v, r: None)

    benchmark.pedantic(run, rounds=3, iterations=1)


# -- run-coalescing kernel vs per-packet loop --------------------------------
#
# Three arrival orders over the same Zipf-skewed flow set:
# - "zipf"    — bursty arrival (burst 32, a TCP-train-sized burst) over the
#               paper-calibrated Zipf flow sizes; the realistic case;
# - "bursty"  — long bursts (256), the locality ceiling;
# - "uniform" — globally shuffled, runs ≈ 1: the kernel's worst case.
#
# Each stream is benched twice: the run kernel (`coalesce=True` for the
# locality streams; engine-default auto-selection for uniform, which is
# what real callers run) and the plain per-packet loop (`coalesce=False`,
# the pre-kernel batched path). CI and docs/performance.md read the
# speedup as the ratio of the paired means — the acceptance bars are
# >= 2x on zipf/bursty and <= 5% regression on uniform.


@pytest.fixture(scope="module")
def _run_streams():
    from repro.traffic.distributions import calibrate_zipf_to_mean
    from repro.traffic.flows import FlowSet
    from repro.traffic.packets import bursty_stream, uniform_stream

    flows = FlowSet.generate(8000, calibrate_zipf_to_mean(27.32, 20_000), seed=13)
    return {
        "zipf": bursty_stream(flows, burst_length=32, seed=13),
        "bursty": bursty_stream(flows, burst_length=256, seed=13),
        "uniform": uniform_stream(flows, seed=13),
    }


def _cache_into(packets, coalesce):
    from repro.cachesim.buffer import EvictionBuffer

    cache = FlowCache(8192, 54, policy="lru")
    buffer = EvictionBuffer()
    drain = lambda i, v, r: None  # noqa: E731 - sink cost excluded by design
    cache.process_into(packets, buffer, drain, coalesce=coalesce)
    cache.dump_into(buffer, drain)


def _bench_kernel_pair(benchmark, packets, label, coalesce, rounds=3):
    import time

    t0 = time.perf_counter()
    _cache_into(packets, False)
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _cache_into(packets, coalesce)
    kernel_s = time.perf_counter() - t0
    print(
        f"\n[{label}] per-packet {loop_s:.3f}s, run-kernel {kernel_s:.3f}s "
        f"-> {loop_s / kernel_s:.2f}x on {len(packets)} packets"
    )
    benchmark.pedantic(
        lambda: _cache_into(packets, coalesce),
        rounds=rounds, iterations=1, warmup_rounds=1,
    )


def bench_run_kernel_zipf(benchmark, _run_streams):
    """Run kernel on Zipf flow sizes with bursty (burst 32) arrival."""
    _bench_kernel_pair(benchmark, _run_streams["zipf"], "runs/zipf", True)


def bench_packet_loop_zipf(benchmark, _run_streams):
    """Per-packet baseline for the zipf stream (speedup denominator)."""
    benchmark.pedantic(
        lambda: _cache_into(_run_streams["zipf"], False), rounds=3, iterations=1
    )


def bench_run_kernel_bursty(benchmark, _run_streams):
    """Run kernel on long bursts (burst 256) — the locality ceiling."""
    _bench_kernel_pair(benchmark, _run_streams["bursty"], "runs/bursty", True)


def bench_packet_loop_bursty(benchmark, _run_streams):
    """Per-packet baseline for the bursty stream (speedup denominator)."""
    benchmark.pedantic(
        lambda: _cache_into(_run_streams["bursty"], False), rounds=3, iterations=1
    )


def bench_run_kernel_uniform(benchmark, _run_streams):
    """Auto-selection on a globally shuffled stream (runs ~ 1).

    This is what the default batched engine actually runs: the
    coalescing probe declines, so the only overhead vs the per-packet
    loop is the vectorized run count — the <= 5% regression bar. Both
    sides of this pair run more rounds than the locality pairs: the
    expected gap is sub-1%, so per-round noise must be averaged down
    for the ratio to be meaningful."""
    _bench_kernel_pair(
        benchmark, _run_streams["uniform"], "runs/uniform", None, rounds=10
    )


def bench_packet_loop_uniform(benchmark, _run_streams):
    """Per-packet baseline for the uniform stream (regression guard)."""
    benchmark.pedantic(
        lambda: _cache_into(_run_streams["uniform"], False),
        rounds=10, iterations=1, warmup_rounds=1,
    )


def _construct(packet_batch, engine: str, registry=None) -> Caesar:
    caesar = Caesar(
        CaesarConfig(
            cache_entries=8192, entry_capacity=54, k=3, bank_size=4096, engine=engine
        ),
        registry=registry,
    )
    caesar.process(packet_batch)
    caesar.finalize()
    return caesar


def bench_caesar_construction_scalar(benchmark, packet_batch):
    """Reference per-eviction path (`engine="scalar"`)."""
    benchmark.pedantic(lambda: _construct(packet_batch, "scalar"), rounds=3, iterations=1)


def bench_caesar_construction_batched(benchmark, packet_batch):
    """Array-native eviction pipeline (`engine="batched"`, the default).

    The acceptance bar for the batched engine is >= 3x the scalar
    mean on this workload; compare the two bench means in
    BENCH_micro.json (also printed by this bench)."""
    import time

    t0 = time.perf_counter()
    _construct(packet_batch, "scalar")
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _construct(packet_batch, "batched")
    batched_s = time.perf_counter() - t0
    print(
        f"\n[engines] scalar {scalar_s:.3f}s, batched {batched_s:.3f}s "
        f"-> {scalar_s / batched_s:.2f}x on {len(packet_batch)} packets"
    )
    benchmark.pedantic(lambda: _construct(packet_batch, "batched"), rounds=3, iterations=1)


def bench_caesar_construction_metrics_enabled(benchmark, packet_batch):
    """Construction with a live :class:`MetricsRegistry` attached.

    The observability contract is that the disabled path (registry=None,
    i.e. `bench_caesar_construction_batched`) pays nothing, and the
    enabled path stays within noise of it — instrumentation is
    chunk-granular, never per-packet. Compare the two means (also
    printed here)."""
    import time

    from repro.obs.registry import MetricsRegistry

    t0 = time.perf_counter()
    _construct(packet_batch, "batched")
    off_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _construct(packet_batch, "batched", registry=MetricsRegistry())
    on_s = time.perf_counter() - t0
    print(
        f"\n[metrics] disabled {off_s:.3f}s, enabled {on_s:.3f}s "
        f"-> {on_s / off_s:.2f}x on {len(packet_batch)} packets"
    )
    benchmark.pedantic(
        lambda: _construct(packet_batch, "batched", registry=MetricsRegistry()),
        rounds=3,
        iterations=1,
    )


# -- streaming runtime ingest throughput -------------------------------------
#
# Steady-state cost of the deployment-shaped path (docs/runtime.md):
# partition -> transport -> W worker processes -> drain. Measured at
# 1/2/4 workers over the same packet batch, once per transport (pickled
# queues vs zero-copy shared-memory rings), so both the worker scaling
# and the transport tax (either 1w variant vs plain construction) are
# readable straight from the artifact.
#
# The timed section is ingest + drain only. Each round gets a fresh,
# already-started runtime from pedantic's untimed setup hook: process
# startup (fork, transport plumbing, counter-bank prefault) is a
# once-per-deployment cost that scales with W and would otherwise
# drown the per-packet signal the curve is meant to show. A fresh
# state dir per round means no run recovers its predecessor's state.
# Checkpointing is off so the number prices the steady-state pipe,
# not the durability cadence; drain still includes the final
# checkpoint each worker writes at finalize.


def _bench_runtime(benchmark, runtime_packet_batch, tmp_path_factory, workers, transport):
    from repro.runtime.client import StreamingRuntime

    # Paper-shaped sizing: a small SRAM cache in front of DRAM-scale
    # counter banks (3 x 1M counters = 24 MiB at W=1). Sharding then
    # buys locality as well as parallelism — each worker's quarter-size
    # banks and cache sit much closer to the cache hierarchy, which is
    # the deployment effect the worker-scaling curve is meant to price.
    config = CaesarConfig(
        cache_entries=2048, entry_capacity=54, k=3, bank_size=1_048_576
    )
    live: dict = {}

    def setup():
        # Tear down the previous round's runtime here (untimed) and
        # hand the timed body a freshly started one.
        if "rt" in live:
            live.pop("rt").shutdown()
        rt = StreamingRuntime(
            config,
            workers,
            state_dir=tmp_path_factory.mktemp(f"rt{workers}w{transport}"),
            transport=transport,
            checkpoint_every=0,
        )
        rt.start()
        live["rt"] = rt
        return (rt,), {}

    def run(rt):
        # ~2 MiB chunks: big enough that each worker sees a handful of
        # large process() calls, and big enough to exercise the shm
        # ring's fragmentation path at W=1 (chunk > half the ring).
        rt.ingest_stream(runtime_packet_batch, chunk_packets=262_144)
        rt.drain()

    try:
        benchmark.pedantic(run, setup=setup, rounds=5, iterations=1, warmup_rounds=1)
    finally:
        if "rt" in live:
            live.pop("rt").shutdown()


def bench_runtime_ingest_1w(benchmark, runtime_packet_batch, tmp_path_factory):
    """Streaming runtime, one shard worker, queue transport (the
    pickled-IPC overhead floor)."""
    _bench_runtime(benchmark, runtime_packet_batch, tmp_path_factory, 1, "queue")


def bench_runtime_ingest_2w(benchmark, runtime_packet_batch, tmp_path_factory):
    """Streaming runtime, two shard workers, queue transport."""
    _bench_runtime(benchmark, runtime_packet_batch, tmp_path_factory, 2, "queue")


def bench_runtime_ingest_4w(benchmark, runtime_packet_batch, tmp_path_factory):
    """Streaming runtime, four shard workers, queue transport."""
    _bench_runtime(benchmark, runtime_packet_batch, tmp_path_factory, 4, "queue")


def bench_runtime_ingest_1w_shm(benchmark, runtime_packet_batch, tmp_path_factory):
    """Streaming runtime, one shard worker, shared-memory rings (the
    zero-copy overhead floor)."""
    _bench_runtime(benchmark, runtime_packet_batch, tmp_path_factory, 1, "shm")


def bench_runtime_ingest_2w_shm(benchmark, runtime_packet_batch, tmp_path_factory):
    """Streaming runtime, two shard workers, shared-memory rings."""
    _bench_runtime(benchmark, runtime_packet_batch, tmp_path_factory, 2, "shm")


def bench_runtime_ingest_4w_shm(benchmark, runtime_packet_batch, tmp_path_factory):
    """Streaming runtime, four shard workers, shared-memory rings."""
    _bench_runtime(benchmark, runtime_packet_batch, tmp_path_factory, 4, "shm")


# -- checkpoint cadence on the ingest path ------------------------------------
#
# Same sizing as _bench_runtime (DRAM-scale banks) at the worker's own
# checkpoint boundary: what does ingest *stop* for when durability
# fires? The timed body is exactly the worker's per-boundary code —
# sync: `_save_checkpoint_atomic` (snapshot + digest + compress +
# fsync + rename, all on the ingest path); async/delta:
# `wait_idle() + capture()` (drain any leftover back-pressure from the
# previous write, then the in-memory snapshot — the only stall the
# async path ever charges to ingest). One chunk of stream is processed
# per round in pedantic's *untimed* setup, which is where the
# background write overlaps in deployment; so the async/delta numbers
# honestly include whatever back-pressure wait survives that overlap
# (on a single-core runner the writer competes with processing for the
# CPU, so the wait is nonzero — it vanishes with a spare core, but the
# snapshot-vs-full-write gap this bench prices does not depend on
# that). tests/test_bench_smoke.py asserts async's median lands
# materially under sync's at this equal cadence. This trace is dense
# (nearly every stripe dirty between boundaries), so `delta` exercises
# its honest full-fallback path and prices the dirty-tracking overhead
# rather than a sparse-trace byte win — the format's size win is
# asserted in tests/test_async_ckpt.py instead. The worker exports the
# same quantity live as `checkpoint.ingest_stall_us`.


def _bench_checkpoint(benchmark, runtime_packet_batch, tmp_path_factory, mode):
    from repro.resilience.async_ckpt import ShardCheckpointer
    from repro.runtime.worker import _save_checkpoint_atomic

    config = CaesarConfig(
        cache_entries=2048, entry_capacity=54, k=3, bank_size=1_048_576
    )
    state_dir = tmp_path_factory.mktemp(f"ck_{mode}")
    scheme = Caesar(config)
    chunks = np.array_split(runtime_packet_batch, 4)
    ckptr = ShardCheckpointer(mode) if mode != "sync" else None
    seq = [0]

    def setup():
        # The next chunk of ingest work — untimed; in deployment this
        # is the span the previous background write overlaps.
        scheme.process(chunks[seq[0] % len(chunks)])
        seq[0] += 1
        return (), {}

    def run():
        s = seq[0]
        if ckptr is None:
            _save_checkpoint_atomic(scheme, state_dir / f"ck_{s:010d}.npz")
        else:
            ckptr.wait_idle()
            ckptr.capture(
                scheme,
                s,
                full=state_dir / f"ck_{s:010d}.npz",
                delta=state_dir / f"ck_{s:010d}_delta.npz",
            )

    try:
        benchmark.pedantic(run, setup=setup, rounds=6, iterations=1, warmup_rounds=2)
    finally:
        if ckptr is not None:
            ckptr.close()


def bench_checkpoint_sync(benchmark, runtime_packet_batch, tmp_path_factory):
    """Per-boundary ingest stall, synchronous writes: the full
    snapshot+compress+fsync+rename lands on the ingest path."""
    _bench_checkpoint(benchmark, runtime_packet_batch, tmp_path_factory, "sync")


def bench_checkpoint_async(benchmark, runtime_packet_batch, tmp_path_factory):
    """Per-boundary ingest stall, background writes: ingest pays the
    in-memory snapshot plus any leftover back-pressure; compression
    and fsync overlap the next chunk on the writer thread."""
    _bench_checkpoint(benchmark, runtime_packet_batch, tmp_path_factory, "async")


def bench_checkpoint_delta(benchmark, runtime_packet_batch, tmp_path_factory):
    """Per-boundary ingest stall, incremental background writes: only
    dirty stripes are serialized when the write fraction allows (this
    dense trace falls back to full, pricing the tracking overhead)."""
    _bench_checkpoint(benchmark, runtime_packet_batch, tmp_path_factory, "delta")


def bench_rcs_vectorized_construction(benchmark, packet_batch):
    def run():
        rcs = RCS(RCSConfig(k=3, bank_size=4096))
        rcs.process(packet_batch)

    benchmark.pedantic(run, rounds=3, iterations=1)


def bench_split_values_batch(benchmark):
    rng = np.random.default_rng(1)
    values = rng.integers(1, 55, size=100_000)
    benchmark(split_values_batch, values, 3, rng)


def bench_split_batch(benchmark):
    """The batched engine's splitter: scalar-stream-compatible."""
    rng = np.random.default_rng(1)
    values = rng.integers(1, 55, size=100_000)
    benchmark(split_batch, values, 3, rng)


def bench_csm_query(benchmark):
    rng = np.random.default_rng(2)
    w = rng.integers(0, 1000, size=(1_000_000, 3))
    benchmark(csm_estimate, w, 10_000_000, 12_500)


def bench_mlm_query(benchmark):
    rng = np.random.default_rng(2)
    w = rng.integers(0, 1000, size=(1_000_000, 3))
    benchmark(mlm_estimate, w, 10_000_000, 12_500, entry_capacity=54)


# -- fusion query path ---------------------------------------------------------
#
# Query-time cost of the multi-vantage fabric (docs/fabric.md): the
# single-box estimate is one CSM pass; the PATH:6 fused query is six
# per-vantage CSM passes plus variance-model evaluation plus the
# weighted-MLE combiner. Both sides query the same flow set over the
# same packet batch, so the pair prices fusion's query overhead factor
# (construction cost is excluded — it is the module fixture).


@pytest.fixture(scope="module")
def _fusion_setup(packet_batch):
    from repro.fabric import Fabric, path_topology

    config = CaesarConfig(
        cache_entries=8192, entry_capacity=54, k=3, bank_size=4096
    )
    single = Caesar(config)
    single.process(packet_batch)
    single.finalize()
    fabric = Fabric(config, path_topology(6))
    fabric.ingest_stream(packet_batch)
    fabric.drain()
    return single, fabric, np.unique(packet_batch)


def bench_fusion_query_single_box(benchmark, _fusion_setup):
    """Single-box CSM query over the batch's flow set (the fusion
    pair's denominator)."""
    single, _, flow_ids = _fusion_setup
    benchmark(single.estimate, flow_ids)


def bench_fusion_query_path6(benchmark, _fusion_setup):
    """6-vantage PATH fabric query with weighted-MLE fusion over the
    same flow set."""
    _, fabric, flow_ids = _fusion_setup
    benchmark(lambda: fabric.query(flow_ids, fusion="mle"))


def bench_tabulation_hashing(benchmark):
    from repro.hashing.tabulation import TabulationHash

    h = TabulationHash(seed=1)
    ids = np.random.default_rng(0).integers(0, 2**64, size=1_000_000, dtype=np.uint64)
    benchmark(h.hash_array, ids)


def bench_bitpacked_roundtrip(benchmark):
    from repro.sram.bitpacked import BitPackedArray

    values = np.random.default_rng(0).integers(0, 2**20, size=37_503).astype(np.int64)

    def run():
        BitPackedArray.pack(values, 20).unpack()

    benchmark.pedantic(run, rounds=3, iterations=1)


def bench_pcap_parse(benchmark, tmp_path_factory):
    from repro.traffic.pcap import read_pcap, write_pcap
    from repro.types import FiveTuple

    rng = np.random.default_rng(0)
    headers = [
        FiveTuple(int(a), int(b), int(p) % 65536, 443, 6)
        for a, b, p in zip(
            rng.integers(0, 2**32, 20_000),
            rng.integers(0, 2**32, 20_000),
            rng.integers(1024, 65536, 20_000),
        )
    ]
    path = tmp_path_factory.mktemp("pcap") / "bench.pcap"
    write_pcap(path, headers)
    benchmark(read_pcap, path)


def bench_braids_decode(benchmark, setup):
    from repro.baselines.counter_braids import CounterBraids, CounterBraidsConfig

    trace = setup.trace
    cb = CounterBraids(CounterBraidsConfig(d=3, bank_size=trace.num_flows))
    cb.process(trace.packets[:200_000])
    sub = np.unique(trace.packets[:200_000])

    def run():
        cb.decode(sub, iterations=10)

    benchmark.pedantic(run, rounds=3, iterations=1)
