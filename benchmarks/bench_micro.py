"""Micro-benchmarks of the hot operations.

These are the operations the paper's FPGA prices in hardware; here they
gauge the *simulator's* throughput (packets/second of pure-Python or
vectorized paths), which bounds how large a REPRO_SCALE is practical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rcs import RCS, RCSConfig
from repro.cachesim.cache import FlowCache
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.csm import csm_estimate
from repro.core.mlm import mlm_estimate
from repro.core.split import split_batch, split_values_batch
from repro.hashing.family import BankedIndexer
from repro.hashing.mix import splitmix64_array


@pytest.fixture(scope="module")
def packet_batch(setup):
    return setup.trace.packets[:200_000]


def bench_hash_throughput(benchmark):
    ids = np.random.default_rng(0).integers(0, 2**64, size=1_000_000, dtype=np.uint64)
    benchmark(splitmix64_array, ids)


def bench_banked_indexing(benchmark):
    idx = BankedIndexer(3, 12_500, seed=1)
    ids = np.random.default_rng(0).integers(0, 2**64, size=200_000, dtype=np.uint64)
    benchmark(idx.indices, ids)


def bench_cache_per_packet_loop(benchmark, packet_batch):
    def run():
        cache = FlowCache(8192, 54, policy="lru")
        cache.process(packet_batch, lambda fid, v, r: None)

    benchmark.pedantic(run, rounds=3, iterations=1)


def _construct(packet_batch, engine: str, registry=None) -> Caesar:
    caesar = Caesar(
        CaesarConfig(
            cache_entries=8192, entry_capacity=54, k=3, bank_size=4096, engine=engine
        ),
        registry=registry,
    )
    caesar.process(packet_batch)
    caesar.finalize()
    return caesar


def bench_caesar_construction_scalar(benchmark, packet_batch):
    """Reference per-eviction path (`engine="scalar"`)."""
    benchmark.pedantic(lambda: _construct(packet_batch, "scalar"), rounds=3, iterations=1)


def bench_caesar_construction_batched(benchmark, packet_batch):
    """Array-native eviction pipeline (`engine="batched"`, the default).

    The acceptance bar for the batched engine is >= 3x the scalar
    mean on this workload; compare the two bench means in
    BENCH_micro.json (also printed by this bench)."""
    import time

    t0 = time.perf_counter()
    _construct(packet_batch, "scalar")
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _construct(packet_batch, "batched")
    batched_s = time.perf_counter() - t0
    print(
        f"\n[engines] scalar {scalar_s:.3f}s, batched {batched_s:.3f}s "
        f"-> {scalar_s / batched_s:.2f}x on {len(packet_batch)} packets"
    )
    benchmark.pedantic(lambda: _construct(packet_batch, "batched"), rounds=3, iterations=1)


def bench_caesar_construction_metrics_enabled(benchmark, packet_batch):
    """Construction with a live :class:`MetricsRegistry` attached.

    The observability contract is that the disabled path (registry=None,
    i.e. `bench_caesar_construction_batched`) pays nothing, and the
    enabled path stays within noise of it — instrumentation is
    chunk-granular, never per-packet. Compare the two means (also
    printed here)."""
    import time

    from repro.obs.registry import MetricsRegistry

    t0 = time.perf_counter()
    _construct(packet_batch, "batched")
    off_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _construct(packet_batch, "batched", registry=MetricsRegistry())
    on_s = time.perf_counter() - t0
    print(
        f"\n[metrics] disabled {off_s:.3f}s, enabled {on_s:.3f}s "
        f"-> {on_s / off_s:.2f}x on {len(packet_batch)} packets"
    )
    benchmark.pedantic(
        lambda: _construct(packet_batch, "batched", registry=MetricsRegistry()),
        rounds=3,
        iterations=1,
    )


def bench_rcs_vectorized_construction(benchmark, packet_batch):
    def run():
        rcs = RCS(RCSConfig(k=3, bank_size=4096))
        rcs.process(packet_batch)

    benchmark.pedantic(run, rounds=3, iterations=1)


def bench_split_values_batch(benchmark):
    rng = np.random.default_rng(1)
    values = rng.integers(1, 55, size=100_000)
    benchmark(split_values_batch, values, 3, rng)


def bench_split_batch(benchmark):
    """The batched engine's splitter: scalar-stream-compatible."""
    rng = np.random.default_rng(1)
    values = rng.integers(1, 55, size=100_000)
    benchmark(split_batch, values, 3, rng)


def bench_csm_query(benchmark):
    rng = np.random.default_rng(2)
    w = rng.integers(0, 1000, size=(1_000_000, 3))
    benchmark(csm_estimate, w, 10_000_000, 12_500)


def bench_mlm_query(benchmark):
    rng = np.random.default_rng(2)
    w = rng.integers(0, 1000, size=(1_000_000, 3))
    benchmark(mlm_estimate, w, 10_000_000, 12_500, entry_capacity=54)


def bench_tabulation_hashing(benchmark):
    from repro.hashing.tabulation import TabulationHash

    h = TabulationHash(seed=1)
    ids = np.random.default_rng(0).integers(0, 2**64, size=1_000_000, dtype=np.uint64)
    benchmark(h.hash_array, ids)


def bench_bitpacked_roundtrip(benchmark):
    from repro.sram.bitpacked import BitPackedArray

    values = np.random.default_rng(0).integers(0, 2**20, size=37_503).astype(np.int64)

    def run():
        BitPackedArray.pack(values, 20).unpack()

    benchmark.pedantic(run, rounds=3, iterations=1)


def bench_pcap_parse(benchmark, tmp_path_factory):
    from repro.traffic.pcap import read_pcap, write_pcap
    from repro.types import FiveTuple

    rng = np.random.default_rng(0)
    headers = [
        FiveTuple(int(a), int(b), int(p) % 65536, 443, 6)
        for a, b, p in zip(
            rng.integers(0, 2**32, 20_000),
            rng.integers(0, 2**32, 20_000),
            rng.integers(1024, 65536, 20_000),
        )
    ]
    path = tmp_path_factory.mktemp("pcap") / "bench.pcap"
    write_pcap(path, headers)
    benchmark(read_pcap, path)


def bench_braids_decode(benchmark, setup):
    from repro.baselines.counter_braids import CounterBraids, CounterBraidsConfig

    trace = setup.trace
    cb = CounterBraids(CounterBraidsConfig(d=3, bank_size=trace.num_flows))
    cb.process(trace.packets[:200_000])
    sub = np.unique(trace.packets[:200_000])

    def run():
        cb.decode(sub, iterations=10)

    benchmark.pedantic(run, rounds=3, iterations=1)
