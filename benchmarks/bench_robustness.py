"""Benchmark + reproduction harness for the 'robustness' experiment
(seeds x hash families x workload shapes).

Run with:

    pytest benchmarks/bench_robustness.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import robustness as experiment


def bench_robustness(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
