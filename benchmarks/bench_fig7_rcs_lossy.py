"""Benchmark + reproduction harness for the paper's fig7 experiment.

Regenerates the fig7 rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_fig7_rcs_lossy.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import fig7_rcs_lossy as experiment


def bench_fig7_rcs_lossy(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
