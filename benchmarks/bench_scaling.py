"""Benchmark + reproduction harness for the 'scaling' experiment
(scale-invariance of the reproduction strategy).

Run with:

    pytest benchmarks/bench_scaling.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import scaling as experiment


def bench_scaling(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
