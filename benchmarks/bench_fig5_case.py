"""Benchmark + reproduction harness for the paper's fig5 experiment.

Regenerates the fig5 rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_fig5_case.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import fig5_case as experiment


def bench_fig5_case(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
