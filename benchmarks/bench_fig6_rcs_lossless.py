"""Benchmark + reproduction harness for the paper's fig6 experiment.

Regenerates the fig6 rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_fig6_rcs_lossless.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import fig6_rcs_lossless as experiment


def bench_fig6_rcs_lossless(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
