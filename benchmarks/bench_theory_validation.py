"""Benchmark + reproduction harness for the 'theory' experiment
(beyond-the-paper validation; see repro/experiments/theory_validation.py).

Run with:

    pytest benchmarks/bench_theory_validation.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import theory_validation as experiment


def bench_theory_validation(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
