"""Benchmark + reproduction harness for the 'eventsim' experiment
(beyond-the-paper validation; see repro/experiments/eventsim_validation.py).

Run with:

    pytest benchmarks/bench_eventsim_validation.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import eventsim_validation as experiment


def bench_eventsim_validation(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
