"""Benchmark + reproduction harness for the paper's ablations experiment.

Regenerates the ablations rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_ablations.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import ablations as experiment


def bench_ablations(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
