"""Benchmark + reproduction harness for the paper's extensions experiment.

Regenerates the extensions rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_extensions.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import extensions as experiment


def bench_extensions(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
