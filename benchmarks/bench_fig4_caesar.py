"""Benchmark + reproduction harness for the paper's fig4 experiment.

Regenerates the fig4 rows/series on the scaled workload and reports
how long the full experiment takes. Run with:

    pytest benchmarks/bench_fig4_caesar.py --benchmark-only
"""

from conftest import run_and_print

from repro.experiments import fig4_caesar as experiment


def bench_fig4_caesar(benchmark, capsys, setup):
    run_and_print(benchmark, capsys, experiment.run, setup)
